"""Switch-on-stall multithreaded core simulation.

Models the DPA's fine-grained multithreading: each core has a single
issue pipeline; a hardware thread owns it for the duration of a compute
segment and relinquishes it during stalls (memory/MMIO waits), letting
other threads fill the bubbles.  Throughput therefore scales with thread
count until either (a) the link delivery rate, or (b) the core's issue
pipeline (``freq / compute_cycles`` items/s per core) saturates — the two
regimes visible in the paper's Figures 13, 14 and 16.

The simulation runs on the same discrete-event engine as the network
model, with cycle-resolution timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dpa.isa import Trace
from repro.sim.engine import Simulator
from repro.sim.events import Timeout
from repro.sim.primitives import Resource

__all__ = ["MTCoreSim", "ThreadRunResult"]


@dataclass
class ThreadRunResult:
    """Outcome of one multithreaded datapath run."""

    trace_name: str
    n_threads: int
    n_cores: int
    n_items: int
    chunk_bytes: int
    elapsed: float  #: seconds to drain all items

    @property
    def items_per_second(self) -> float:
        return self.n_items / self.elapsed if self.elapsed > 0 else float("inf")

    @property
    def bytes_per_second(self) -> float:
        return self.items_per_second * self.chunk_bytes


class MTCoreSim:
    """A bank of fine-grained multithreaded cores.

    Parameters
    ----------
    freq_hz:
        Core clock (DPA: 1.8 GHz).
    threads_per_core:
        Hardware thread contexts per core (DPA: 16).
    """

    def __init__(self, freq_hz: float, threads_per_core: int = 16) -> None:
        if freq_hz <= 0 or threads_per_core < 1:
            raise ValueError("invalid core parameters")
        self.freq_hz = float(freq_hz)
        self.threads_per_core = threads_per_core

    def run(
        self,
        trace: Trace,
        n_threads: int,
        n_items: int,
        chunk_bytes: int,
        arrival_interval: Optional[float] = None,
        start_overhead: float = 0.0,
        tracer=None,
    ) -> ThreadRunResult:
        """Process *n_items* work items across *n_threads*.

        Threads are placed compactly (paper §VI-C: fill core 1's 16
        contexts before touching core 2), each handling the items of its
        own connection — item *k* globally belongs to thread ``k mod T``.
        ``arrival_interval`` gates item *k* until ``k·interval`` (wire
        delivery at link rate); ``None`` means items are pre-staged.
        """
        if n_threads < 1 or n_items < 1:
            raise ValueError("need at least one thread and one item")
        sim = Simulator()
        n_cores = -(-n_threads // self.threads_per_core)
        core_pipes: List[Resource] = [Resource(sim, 1) for _ in range(n_cores)]
        cycle = 1.0 / self.freq_hz
        segments = [(s.kind == "compute", s.cycles * cycle)
                    for s in trace.all_segments if s.cycles > 0]

        def thread_proc(t: int):
            pipe = core_pipes[t // self.threads_per_core]
            trk = tracer.track("dpa", f"t{t}") if tracer is not None else None
            if start_overhead > 0.0:
                yield Timeout(sim, start_overhead)
            k = t
            while k < n_items:
                if arrival_interval is not None:
                    ready_at = k * arrival_interval
                    if ready_at > sim.now:
                        yield Timeout(sim, ready_at - sim.now)
                for is_compute, dur in segments:
                    if is_compute:
                        yield pipe.acquire()
                        issue_at = sim.now
                        yield Timeout(sim, dur)
                        pipe.release()
                        if trk is not None:
                            trk.complete("dpa.compute", issue_at, sim.now - issue_at)
                    else:
                        yield Timeout(sim, dur)
                k += n_threads

        procs = [sim.spawn(thread_proc(t), name=f"hw-thread-{t}")
                 for t in range(min(n_threads, n_items))]
        sim.drain(procs)
        return ThreadRunResult(
            trace_name=trace.name,
            n_threads=n_threads,
            n_cores=n_cores,
            n_items=n_items,
            chunk_bytes=chunk_bytes,
            elapsed=sim.now,
        )
