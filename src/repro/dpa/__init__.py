"""Cycle-approximate model of the NVIDIA Datapath Accelerator (DPA).

The paper offloads the receive datapath of its collective progress engine
to the DPA inside BlueField-3 / ConnectX-7: 16 energy-efficient RISC-V
cores at 1.8 GHz, 16 hardware threads per core, 1.5 MB LLC (paper §II-C).
The datapath is low-IPC data movement — polling CQEs, bitmap updates,
posting loopback DMA writes — so nearly all its latency is memory stalls
that *fine-grained multithreading* can hide.

This package models exactly that mechanism:

* :mod:`repro.dpa.isa` — instruction traces as (compute, stall) segments.
* :mod:`repro.dpa.kernels` — the UD and UC receive-datapath kernels
  (Appendix C) and the CPU software datapaths of the Fig 5 baseline,
  calibrated to Table I's instructions/CQE and cycles/CQE.
* :mod:`repro.dpa.core` — a switch-on-stall multithreaded core simulator:
  compute segments serialize on the core's issue pipeline, stall segments
  overlap across threads.
* :mod:`repro.dpa.device` — DPA and host-CPU device descriptions with the
  compact thread-placement policy of §VI-C.
* :mod:`repro.dpa.offload` — the experiment drivers behind Table I and
  Figures 5, 13, 14, 15, 16.
"""

from repro.dpa.core import MTCoreSim, ThreadRunResult
from repro.dpa.device import CPU_EPYC_7413, DPA_BF3, CpuSpec, DpaSpec
from repro.dpa.isa import Segment, Trace
from repro.dpa.kernels import (
    cpu_rc_chunked_trace,
    cpu_ucx_ud_trace,
    dpa_uc_trace,
    dpa_ud_trace,
)
from repro.dpa.offload import (
    DatapathMetrics,
    chunk_rate_scaling,
    cpu_datapath_throughput,
    dpa_single_thread_metrics,
    dpa_thread_scaling,
    dpa_throughput,
    uc_chunk_size_sweep,
)

__all__ = [
    "CPU_EPYC_7413",
    "CpuSpec",
    "DPA_BF3",
    "DatapathMetrics",
    "DpaSpec",
    "MTCoreSim",
    "Segment",
    "ThreadRunResult",
    "Trace",
    "chunk_rate_scaling",
    "cpu_datapath_throughput",
    "cpu_rc_chunked_trace",
    "cpu_ucx_ud_trace",
    "dpa_single_thread_metrics",
    "dpa_thread_scaling",
    "dpa_throughput",
    "dpa_uc_trace",
    "dpa_ud_trace",
    "uc_chunk_size_sweep",
]
