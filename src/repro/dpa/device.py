"""Device descriptions: the BlueField-3 DPA and the host-CPU baseline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MiB, gbit_per_s

__all__ = ["DpaSpec", "CpuSpec", "DPA_BF3", "CPU_EPYC_7413"]


@dataclass(frozen=True)
class DpaSpec:
    """A Datapath Accelerator complex (paper §II-C)."""

    n_cores: int = 16
    threads_per_core: int = 16
    freq_hz: float = 1.8e9
    llc_bytes: int = int(1.5 * MiB)
    #: DRAM interfaced through the BlueField ARM subsystem (staging area)
    dram_bytes: int = 16 * 1024 * MiB

    @property
    def total_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    def cores_for(self, n_threads: int) -> int:
        """Compact placement: cores touched by *n_threads* (§VI-C)."""
        return -(-n_threads // self.threads_per_core)


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU used by the software-datapath baseline (Fig 5)."""

    n_cores: int = 24
    freq_hz: float = 2.6e9
    name: str = "AMD EPYC 7413"


#: The DPA testbed parts (paper §VI-A).
DPA_BF3 = DpaSpec()
CPU_EPYC_7413 = CpuSpec()

#: Link of the DPA testbed: one 200 Gbit/s BlueField-3 port.
DPA_TESTBED_LINK = gbit_per_s(200)
