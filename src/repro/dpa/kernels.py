"""Receive-datapath kernel traces, calibrated to the paper's Table I.

The segment structure follows the DPA kernel of Appendix C (and Fig 6):

1. poll the CQE out of NIC-mapped memory (uncached load → long stall),
2. decode the immediate (PSN) and compute the bitmap offset,
3. read-modify-write the bitmap word,
4. *(UD only)* build + post the loopback RDMA write that copies the chunk
   from the staging area to the user buffer, and ring its doorbell,
5. re-post the cached receive WR and update the RQ doorbell,
6. step the CQ consumer index / re-arm.

Calibration targets (Table I, 8 MiB buffer, 4 KiB chunks):

==========  ============  ==========  ====
datapath    instr/CQE     cycles/CQE  IPC
UC          66            598         0.11
UD          113           1084        0.10
==========  ============  ==========  ====

The host-CPU baseline traces (Fig 5) model the same logical work done by
a single x86 core through kernel-bypass Verbs: higher per-op instruction
counts (UCX bookkeeping, software reliability) but partially overlapped
stalls thanks to out-of-order execution.
"""

from __future__ import annotations

from repro.dpa.isa import Segment, Trace

__all__ = [
    "dpa_ud_trace",
    "dpa_uc_trace",
    "cpu_ucx_ud_trace",
    "cpu_rc_chunked_trace",
]


def dpa_ud_trace() -> Trace:
    """UD receive datapath on a DPA hardware thread (staging + copy)."""
    return Trace.build(
        "dpa-ud",
        [
            Segment("stall", 210, "poll CQE (NIC SRAM load)"),
            Segment("compute", 18, "decode imm/PSN, bounds"),
            Segment("stall", 150, "bitmap word load"),
            Segment("compute", 12, "bitmap set + count"),
            Segment("compute", 35, "build loopback WQE (staging→user)"),
            Segment("stall", 260, "DMA doorbell MMIO"),
            Segment("compute", 28, "re-post cached recv WR"),
            Segment("stall", 200, "RQ doorbell MMIO"),
            Segment("compute", 20, "CQ consumer index, re-arm"),
            Segment("stall", 151, "CQ doorbell"),
        ],
        hidden=[
            # flexio_dev_thread_reschedule() + CQ re-arm round trip: paid
            # per activation, outside the measured datapath loop.  This is
            # what separates Table I's 1084 cycles/CQE from the measured
            # 5.2 GiB/s (which implies ~1320 effective cycles).
            Segment("stall", 236, "FlexIO thread reschedule"),
        ],
    )


def dpa_uc_trace() -> Trace:
    """UC receive datapath: data already placed by the NIC — no staging
    copy, no DMA doorbell (Appendix C kernel)."""
    return Trace.build(
        "dpa-uc",
        [
            Segment("stall", 210, "poll CQE (NIC SRAM load)"),
            Segment("compute", 16, "decode imm/PSN"),
            Segment("stall", 142, "bitmap word load"),
            Segment("compute", 12, "bitmap set + count"),
            Segment("compute", 22, "re-post cached recv WR"),
            Segment("stall", 180, "RQ doorbell MMIO"),
            Segment("compute", 16, "CQ consumer index, re-arm"),
        ],
    )


def cpu_ucx_ud_trace() -> Trace:
    """Production UCX UD datapath on one server core (Fig 5 'UCX UD'):
    segmentation/reassembly bookkeeping plus the software reliability
    protocol (sliding-window ACK state).  OoO execution hides most cache
    misses, so stalls are short but instruction count is high."""
    return Trace.build(
        "cpu-ucx-ud",
        [
            Segment("stall", 90, "poll CQE"),
            Segment("compute", 260, "UCX AM dispatch + reassembly state"),
            Segment("compute", 330, "SW reliability (window, ACK bookkeeping)"),
            Segment("compute", 140, "copy staging→user (issue + cache misses)"),
            Segment("stall", 120, "memory stalls not hidden by OoO"),
            Segment("compute", 150, "re-post recv + doorbell"),
        ],
    )


def cpu_rc_chunked_trace() -> Trace:
    """The paper's custom RC-transport chunked datapath (Fig 5 'RC'):
    hardware reliability, so only chunk bookkeeping remains."""
    return Trace.build(
        "cpu-rc-chunked",
        [
            Segment("stall", 90, "poll CQE"),
            Segment("compute", 230, "chunk bookkeeping"),
            Segment("compute", 140, "re-post recv + doorbell"),
            Segment("stall", 80, "memory stalls not hidden by OoO"),
        ],
    )
