"""Experiment drivers for the SmartNIC-offload study.

These functions produce the quantities reported in the paper's DPA
evaluation: Table I (single-thread metrics), Fig 5 (CPU vs DPA), Fig 13
(thread scaling at 8 MiB / 4 KiB), Fig 14 (buffer-size × thread scaling),
Fig 15 (UC multi-packet chunk sizes) and Fig 16 (64 B chunks — the
1.6 Tbit/s arrival-rate stress test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.dpa.core import MTCoreSim
from repro.dpa.device import DPA_BF3, CPU_EPYC_7413, CpuSpec, DpaSpec
from repro.dpa.isa import Trace
from repro.dpa.kernels import (
    cpu_rc_chunked_trace,
    cpu_ucx_ud_trace,
    dpa_uc_trace,
    dpa_ud_trace,
)
from repro.units import US, MiB, gbit_per_s, to_gib_per_s

__all__ = [
    "DatapathMetrics",
    "dpa_single_thread_metrics",
    "dpa_throughput",
    "dpa_thread_scaling",
    "uc_chunk_size_sweep",
    "chunk_rate_scaling",
    "cpu_datapath_throughput",
]

#: per-packet wire overhead used to convert link rate to goodput
_HEADER_BYTES = 64
#: one-time kernel-activation / metadata-copy overhead per operation
_ACTIVATION_OVERHEAD = 2.0 * US


def _trace_for(transport: str) -> Trace:
    if transport == "ud":
        return dpa_ud_trace()
    if transport == "uc":
        return dpa_uc_trace()
    raise ValueError(f"unknown transport {transport!r}")


def _goodput_interval(chunk_bytes: int, link_bytes_per_s: Optional[float]) -> Optional[float]:
    """Arrival interval of chunk-sized packets at link rate (None = no gate)."""
    if link_bytes_per_s is None:
        return None
    return (chunk_bytes + _HEADER_BYTES) / link_bytes_per_s


@dataclass
class DatapathMetrics:
    """A Table I row."""

    transport: str
    throughput: float  #: bytes/s
    instructions_per_cqe: int
    cycles_per_cqe: int
    ipc: float

    @property
    def throughput_gib_s(self) -> float:
        return to_gib_per_s(self.throughput)


def dpa_single_thread_metrics(
    transport: str = "ud",
    chunk_bytes: int = 4096,
    buffer_bytes: int = 8 * MiB,
    spec: DpaSpec = DPA_BF3,
) -> DatapathMetrics:
    """Table I: one hardware thread draining one connection."""
    trace = _trace_for(transport)
    sim = MTCoreSim(spec.freq_hz, spec.threads_per_core)
    n_items = max(1, buffer_bytes // chunk_bytes)
    run = sim.run(trace, n_threads=1, n_items=n_items, chunk_bytes=chunk_bytes)
    return DatapathMetrics(
        transport=transport,
        throughput=run.bytes_per_second,
        instructions_per_cqe=trace.compute_cycles,
        cycles_per_cqe=trace.total_cycles,
        ipc=round(trace.ipc, 2),
    )


def dpa_throughput(
    transport: str,
    n_threads: int,
    chunk_bytes: int = 4096,
    buffer_bytes: int = 8 * MiB,
    link: Optional[float] = gbit_per_s(200),
    spec: DpaSpec = DPA_BF3,
) -> float:
    """Receive throughput (bytes/s) with *n_threads* DPA threads, chunks
    arriving at link rate (Figs 13–15)."""
    trace = _trace_for(transport)
    sim = MTCoreSim(spec.freq_hz, spec.threads_per_core)
    n_items = max(1, buffer_bytes // chunk_bytes)
    run = sim.run(
        trace,
        n_threads=min(n_threads, spec.total_threads),
        n_items=n_items,
        chunk_bytes=chunk_bytes,
        arrival_interval=_goodput_interval(chunk_bytes, link),
        start_overhead=_ACTIVATION_OVERHEAD,
    )
    return run.bytes_per_second


def dpa_thread_scaling(
    transport: str,
    threads: Iterable[int] = (1, 2, 4, 8, 16),
    chunk_bytes: int = 4096,
    buffer_bytes: int = 8 * MiB,
    link: Optional[float] = gbit_per_s(200),
    spec: DpaSpec = DPA_BF3,
) -> Dict[int, float]:
    """Fig 13/14 series: thread count → throughput (bytes/s)."""
    return {
        t: dpa_throughput(transport, t, chunk_bytes, buffer_bytes, link, spec)
        for t in threads
    }


def uc_chunk_size_sweep(
    chunk_sizes: Iterable[int] = (4096, 8192, 16384, 32768, 65536),
    threads: Iterable[int] = (1, 2, 4),
    buffer_bytes: int = 8 * MiB,
    link: Optional[float] = gbit_per_s(200),
    spec: DpaSpec = DPA_BF3,
) -> Dict[int, Dict[int, float]]:
    """Fig 15: multi-packet UC chunks — ``{chunk: {threads: bytes/s}}``.

    With UC the NIC reassembles arbitrary-length writes, so a "chunk" may
    span many MTU packets and CQEs arrive proportionally less often.
    """
    out: Dict[int, Dict[int, float]] = {}
    for chunk in chunk_sizes:
        out[chunk] = {
            t: dpa_throughput("uc", t, chunk, buffer_bytes, link, spec)
            for t in threads
        }
    return out


def chunk_rate_scaling(
    threads: Iterable[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    transport: str = "ud",
    chunk_bytes: int = 64,
    n_items: int = 65536,
    spec: DpaSpec = DPA_BF3,
) -> Dict[int, float]:
    """Fig 16: sustained chunk processing rate (chunks/s) with 64 B chunks
    and no link gate — does the DPA keep up with a 1.6 Tbit/s arrival rate
    of MTU packets (≈ 48.8 M CQEs/s)?"""
    trace = _trace_for(transport)
    sim = MTCoreSim(spec.freq_hz, spec.threads_per_core)
    out: Dict[int, float] = {}
    for t in threads:
        t_eff = min(t, spec.total_threads)
        run = sim.run(trace, n_threads=t_eff, n_items=max(n_items, t_eff * 64),
                      chunk_bytes=chunk_bytes)
        out[t] = run.items_per_second
    return out


def cpu_datapath_throughput(
    datapath: str,
    msg_bytes: int,
    chunk_bytes: int = 4096,
    link: Optional[float] = gbit_per_s(200),
    spec: CpuSpec = CPU_EPYC_7413,
    per_message_overhead: float = 3.0 * US,
) -> float:
    """Fig 5: single-core software datapath throughput (bytes/s).

    A lone x86 thread gets no multithreaded stall-hiding: every trace
    cycle is serial.  Message setup (tag match, rendezvous, registration
    cache lookup) adds a fixed overhead that dominates small messages.
    """
    if datapath == "ucx_ud":
        trace = cpu_ucx_ud_trace()
    elif datapath == "rc_chunked":
        trace = cpu_rc_chunked_trace()
    else:
        raise ValueError(f"unknown CPU datapath {datapath!r}")
    n_chunks = max(1, -(-msg_bytes // chunk_bytes))
    per_chunk = trace.total_cycles / spec.freq_hz
    elapsed = per_message_overhead + n_chunks * per_chunk
    tput = msg_bytes / elapsed
    if link is not None:
        goodput = link * chunk_bytes / (chunk_bytes + _HEADER_BYTES)
        tput = min(tput, goodput)
    return tput
