"""Instruction traces for the datapath kernels.

A per-CQE kernel execution is modeled as an ordered list of
:class:`Segment` s.  ``compute`` segments are instructions that occupy the
core's single issue pipeline (one instruction per cycle while running);
``stall`` segments are long-latency waits — uncached loads from NIC-mapped
CQ memory, doorbell MMIO, DMA-descriptor round trips — during which the
core is free to run *other* hardware threads.

This two-kind decomposition is what makes the DPA's fine-grained
multithreading effective: Table I measures IPC ≈ 0.1, i.e. ~90 % of a
single thread's cycles are stalls that additional threads can fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Segment", "Trace"]


@dataclass(frozen=True)
class Segment:
    """One phase of a kernel: ``kind`` is 'compute' or 'stall'."""

    kind: str
    cycles: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "stall"):
            raise ValueError(f"unknown segment kind {self.kind!r}")
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


@dataclass(frozen=True)
class Trace:
    """A full per-work-item instruction trace.

    ``hidden_segments`` are costs paid on every item but *outside* the
    measured datapath loop (e.g. the FlexIO thread reschedule at the end
    of the Appendix C kernel): the simulator executes them, but they are
    excluded from the instructions/cycles/IPC metrics — matching how the
    paper's Table I counters are scoped versus its measured throughput.
    """

    name: str
    segments: Tuple[Segment, ...]
    hidden_segments: Tuple[Segment, ...] = ()

    @staticmethod
    def build(
        name: str,
        segments: Sequence[Segment],
        hidden: Sequence[Segment] = (),
    ) -> "Trace":
        return Trace(name, tuple(segments), tuple(hidden))

    @property
    def all_segments(self) -> Tuple[Segment, ...]:
        """Everything the hardware actually executes per item."""
        return self.segments + self.hidden_segments

    @property
    def compute_cycles(self) -> int:
        """Instructions issued per item (≈ instructions/CQE at IPC 1)."""
        return sum(s.cycles for s in self.segments if s.kind == "compute")

    @property
    def stall_cycles(self) -> int:
        return sum(s.cycles for s in self.segments if s.kind == "stall")

    @property
    def total_cycles(self) -> int:
        """Single-thread cycles per item (cycles/CQE of Table I)."""
        return self.compute_cycles + self.stall_cycles

    @property
    def effective_cycles(self) -> int:
        """Cycles per item actually executed (loop + hidden overheads)."""
        return self.total_cycles + sum(s.cycles for s in self.hidden_segments)

    @property
    def ipc(self) -> float:
        """Single-thread instructions per cycle (Table I metric)."""
        return self.compute_cycles / self.total_cycles if self.total_cycles else 0.0

    def scaled(self, compute_factor: float = 1.0, stall_factor: float = 1.0) -> "Trace":
        """A derived trace with uniformly scaled segment costs."""

        def scale(segs):
            return tuple(
                Segment(
                    s.kind,
                    max(0, round(s.cycles * (compute_factor if s.kind == "compute"
                                             else stall_factor))),
                    s.label,
                )
                for s in segs
            )

        return Trace(self.name, scale(self.segments), scale(self.hidden_segments))
