"""Shared machinery for the benchmark harness in ``benchmarks/``."""

from repro.bench.runner import (
    coarse_config,
    format_table,
    make_fabric,
    paper_vs_measured,
    report,
)
from repro.bench import reference

__all__ = [
    "coarse_config",
    "format_table",
    "make_fabric",
    "paper_vs_measured",
    "reference",
    "report",
]
