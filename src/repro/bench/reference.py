"""Digitized reference values from the paper's evaluation.

Absolute numbers come from the authors' hardware (ConnectX-3 56 Gbit/s
fabric, BlueField-3 DPA); our substrate is a simulator, so benches compare
**shapes and ratios** against these, not absolute magnitudes.
"""

from repro.units import GiB, KiB, MiB

# ----------------------------------------------------------------- Table I
#: (throughput GiB/s, instructions/CQE, cycles/CQE, IPC) at 8 MiB / 4 KiB
TABLE1 = {
    "uc": {"throughput_gib_s": 11.9, "instr_per_cqe": 66, "cycles_per_cqe": 598,
           "ipc": 0.11},
    "ud": {"throughput_gib_s": 5.2, "instr_per_cqe": 113, "cycles_per_cqe": 1084,
           "ipc": 0.10},
}

# ------------------------------------------------------------------- Fig 2
FIG2 = {
    "n_hosts": 1024,
    "radix": 32,
    "savings_at_scale": 2.0,  # node-boundary traffic ratio → 2
}

# ------------------------------------------------------------------- Fig 5
FIG5 = {
    "link_gbit": 200,
    # one server-grade core cannot reach line rate:
    "single_core_below_line_rate": True,
}

# ------------------------------------------------------------------ Fig 10
FIG10 = {
    # ≥16 nodes: 99 % of progress-path time is the multicast datapath
    "datapath_fraction_at_16_nodes": 0.99,
}

# ------------------------------------------------------------------ Fig 11
FIG11 = {
    "n_nodes": 188,
    "bcast_vs_knomial_speedup": 1.3,
    "bcast_vs_bintree_speedup": 4.75,
    # 128–256 KiB allgather: multicast ≈ ring throughput
    "ag_mcast_vs_ring_band": (0.8, 1.3),
    "fsdp_typical_sizes": (128 * KiB, 256 * KiB),
}

# ------------------------------------------------------------------ Fig 12
FIG12 = {
    "msg_bytes": 64 * KiB,
    "iterations": 10,
    "allgather_savings": 2.0,  # vs P2P, across 18 switch telemetry
    "broadcast_savings": 1.5,
    "savings_range": (1.5, 2.0),
}

# ------------------------------------------------------------- Figs 13/14
FIG13 = {
    "buffer_bytes": 8 * MiB,
    "chunk_bytes": 4 * KiB,
    "uc_threads_to_line_rate": 4,
    "ud_threads_to_line_rate_range": (8, 16),
    "one_core_vs_cpu_core_speedup": 1.25,
}

# ------------------------------------------------------------------ Fig 15
FIG15 = {
    "buffer_bytes": 8 * MiB,
    # larger chunks → line rate with fewer threads
    "big_chunk_single_thread_line_rate": 64 * KiB,
}

# ------------------------------------------------------------------ Fig 16
FIG16 = {
    "chunk_bytes": 64,
    "target_rate_chunks_per_s": 1600e9 / 8 / 4096,  # ≈ 48.8 M/s
    "threads_sustaining": 128,
}

# -------------------------------------------------------------- Appendix B
APPENDIX_B = {
    "speedup": lambda p: 2.0 - 2.0 / p,
}

# ------------------------------------------------------------------- Fig 7
FIG7 = {
    "dpa_llc_bytes": int(1.5 * MiB),
    "llc_addressable_buffer_approx": 50 * GiB,
}
