"""Helpers shared by every benchmark: fabric factories, table formatting,
and result reporting (stdout + ``benchmarks/results/*.txt``)."""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from repro.core.communicator import CollectiveConfig
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import gbit_per_s

__all__ = ["make_fabric", "coarse_config", "format_table", "report",
           "paper_vs_measured"]


def make_fabric(
    n_hosts: int = 16,
    topo: str = "auto",
    link_gbit: float = 56.0,
    mtu: int = 4096,
    seed: int = 0,
    topo_params: Optional[dict] = None,
) -> Fabric:
    """A fresh simulator + fabric for one benchmark run.

    ``topo='auto'`` picks a star for tiny clusters, the paper's 188-node
    testbed shape when asked for 188 hosts, and a leaf-spine otherwise.
    Zoo kinds (``torus``/``dragonfly``/``multi_rail``/…) route through
    :class:`~repro.net.topology.TopologySpec` with ``topo_params``.
    ``mtu`` doubles as the *simulation granularity* knob: benches that only
    need byte-accurate traffic or large-message timing raise it so one
    simulated packet stands for many wire packets (documented per bench).
    """
    if topo == "auto":
        if n_hosts == 188:
            topology = Topology.testbed_188()
        elif n_hosts <= 8:
            topology = Topology.star(n_hosts)
        else:
            n_leaf = max(2, -(-n_hosts // 16))
            topology = Topology.leaf_spine(n_hosts, n_leaf, max(2, n_leaf // 2))
    elif topo == "star":
        topology = Topology.star(n_hosts)
    elif topo == "testbed_188":
        topology = Topology.testbed_188()
    elif topo == "back_to_back":
        topology = Topology.back_to_back()
    else:
        from repro.net.topology import TopologySpec
        topology = TopologySpec(topo, n_hosts, dict(topo_params or {})).build()
    return Fabric(
        Simulator(),
        topology,
        link_bandwidth=gbit_per_s(link_gbit),
        mtu=mtu,
        streams=RandomStreams(seed),
    )


def coarse_config(chunk_bytes: int, **overrides) -> CollectiveConfig:
    """A config for coarse-grained timing runs: one simulated chunk stands
    for ``chunk_bytes / 4096`` real datagrams.  Per-chunk datapath costs
    are scaled by the aggregation factor so total software time stays
    calibrated; per-batch and per-control-message costs are *not* scaled —
    they are paid per operation, not per byte."""
    factor = max(1.0, chunk_bytes / 4096)
    base = HostCostModel()
    cost = HostCostModel(
        cqe_poll=base.cqe_poll * factor,
        cqe_process=base.cqe_process * factor,
        recv_repost=base.recv_repost * factor,
        copy_issue=base.copy_issue * factor,
        send_wqe=base.send_wqe * factor,
        doorbell=base.doorbell,
        ctrl_message=base.ctrl_message,
    )
    return CollectiveConfig(chunk_size=chunk_bytes, cost=cost, **overrides)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _results_dir() -> Optional[str]:
    for cand in ("benchmarks/results", "results"):
        parent = os.path.dirname(cand) or "."
        if os.path.isdir(parent):
            os.makedirs(cand, exist_ok=True)
            return cand
    return None


def report(name: str, text: str) -> None:
    """Print a bench's data table and persist it for EXPERIMENTS.md."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    out_dir = _results_dir()
    if out_dir is not None:
        with open(os.path.join(out_dir, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")


def paper_vs_measured(rows: Iterable[Sequence]) -> str:
    """Format (metric, paper, measured) triples."""
    return format_table(["metric", "paper", "measured"], rows)
