"""Simulated RDMA fabric.

This package models everything between two user buffers on different hosts:

* :mod:`repro.net.packet` — packets/datagrams with zero-copy payload views.
* :mod:`repro.net.link` — bandwidth/latency channels with fault injection,
  reordering, and per-direction traffic counters.
* :mod:`repro.net.switch` — forwarding + multicast replication + counters.
* :mod:`repro.net.topology` — fat-tree (and simpler) topology builders with
  deterministic destination routing and multicast spanning trees.
* :mod:`repro.net.memory` — registered memory regions (the RDMA MR model).
* :mod:`repro.net.nic` — host NIC: queue pairs, completion queues, the send
  engine, receive matching, RNR behaviour, and one-sided RC operations.
* :mod:`repro.net.fabric` — glues a topology, switches, links and NICs into
  a runnable network and exposes counter scraping (the "switch telemetry"
  used by the paper's Figure 12 experiment).

The user-visible API mirrors InfiniBand Verbs closely enough that the
protocol code in :mod:`repro.core` reads like its C counterpart: create a
QP of a given transport, attach it to a multicast group, pre-post receive
work requests, post sends with immediate data, poll CQEs.
"""

from repro.net.packet import Packet, PacketKind
from repro.net.faults import CrashSpec, GilbertElliott, StragglerSpec, Window
from repro.net.link import Channel, FaultSpec
from repro.net.switch import Switch
from repro.net.memory import Memory, MemoryRegion
from repro.net.nic import (
    CQE,
    CompletionQueue,
    Nic,
    Opcode,
    QueuePair,
    RecvWR,
    SendWR,
    Transport,
)
from repro.net.topology import Topology, TopologyError, TopologySpec
from repro.net.plan import (
    MulticastPlan,
    PlanError,
    plan_mcast,
    validate_disjointness,
    validate_plan,
)
from repro.net.fabric import Fabric

__all__ = [
    "CQE",
    "Channel",
    "CompletionQueue",
    "CrashSpec",
    "Fabric",
    "FaultSpec",
    "GilbertElliott",
    "Memory",
    "MemoryRegion",
    "MulticastPlan",
    "Nic",
    "Opcode",
    "Packet",
    "PacketKind",
    "PlanError",
    "QueuePair",
    "RecvWR",
    "SendWR",
    "StragglerSpec",
    "Switch",
    "Topology",
    "TopologyError",
    "Window",
    "TopologySpec",
    "Transport",
    "plan_mcast",
    "validate_disjointness",
    "validate_plan",
]
