"""Switch model: unicast forwarding, multicast replication, port counters.

A switch owns one egress :class:`~repro.net.link.Channel` per neighbor.  On
receiving a packet it applies a fixed forwarding delay, then either forwards
along the unicast table (``dst host → neighbor``) or, for multicast,
replicates the packet to every port that is part of the group's spanning
tree except the ingress port — exactly how IB switches flood a multicast
LID along the spanning tree installed by the subnet manager.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.net.link import Channel
from repro.net.packet import Packet, PacketTrain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Switch"]


class Switch:
    """A store-and-forward switch node."""

    def __init__(self, sim: "Simulator", name: str, forwarding_delay: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self.forwarding_delay = float(forwarding_delay)
        #: neighbor node name → egress channel toward that neighbor
        self.ports: Dict[str, Channel] = {}
        #: destination host id → neighbor name
        self.unicast_table: Dict[int, str] = {}
        #: multicast gid → set of tree-adjacent neighbor names
        self.mcast_table: Dict[int, Set[str]] = {}
        #: optional in-network-compute hook: ``fn(switch, packet, in_port)``
        #: consumes INC_REDUCE packets (installed by repro.net.inc)
        self.inc_handler = None
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        #: fail-stop flag: a dead switch black-holes everything it touches
        #: (set by Fabric.crash_switch, never cleared — crashes are permanent)
        self.dead = False
        self.packets_dropped_dead = 0
        #: observability track or None (see repro.obs); only train relays
        #: are traced — per-packet egress is visible on the link tracks.
        self.trace = None

    # ----------------------------------------------------------------- wiring

    def add_port(self, channel: Channel) -> None:
        """Register the egress channel toward ``channel.dst_name``."""
        self.ports[channel.dst_name] = channel

    def install_unicast(self, dst_host: int, neighbor: str) -> None:
        if neighbor not in self.ports:
            raise ValueError(f"{self.name}: no port toward {neighbor}")
        self.unicast_table[dst_host] = neighbor

    def install_mcast(self, gid: int, neighbors: Set[str]) -> None:
        missing = neighbors - set(self.ports)
        if missing:
            raise ValueError(f"{self.name}: no ports toward {sorted(missing)}")
        self.mcast_table[gid] = set(neighbors)

    # ------------------------------------------------------------------ data

    def receive(self, packet: Packet, in_channel: Optional[Channel]) -> None:
        """Entry point called by the delivering channel."""
        in_port = in_channel.src_name if in_channel is not None else None
        if self.forwarding_delay > 0.0:
            self.sim.post_later(self.forwarding_delay, self._forward, packet, in_port)
        else:
            self._forward(packet, in_port)

    def _forward(self, packet: Packet, in_port: Optional[str]) -> None:
        if self.dead:
            self.packets_dropped_dead += 1
            return
        if self.inc_handler is not None and packet.kind.name == "INC_REDUCE":
            self.inc_handler(self, packet, in_port)
            return
        if packet.is_multicast:
            tree_ports = self.mcast_table.get(packet.mcast_gid)
            if tree_ports is None:
                self.packets_dropped_no_route += 1
                return
            for neighbor in sorted(tree_ports):
                if neighbor == in_port:
                    continue
                self.ports[neighbor].transmit(packet.clone_for_fanout())
                self.packets_forwarded += 1
        else:
            neighbor = self.unicast_table.get(packet.dst)
            if neighbor is None:
                self.packets_dropped_no_route += 1
                return
            self.ports[neighbor].transmit(packet)
            self.packets_forwarded += 1

    # ------------------------------------------------------------- fast path

    def receive_train(self, train: PacketTrain, in_channel: Optional[Channel]) -> None:
        """Relay a coalesced train: one forwarding-delay event for the whole
        run instead of one per packet (entry point for train deliveries)."""
        in_port = in_channel.src_name if in_channel is not None else None
        if self.forwarding_delay > 0.0:
            self.sim.post_later(self.forwarding_delay, self._forward_train, train, in_port)
        else:
            self._forward_train(train, in_port)

    def _forward_train(self, train: PacketTrain, in_port: Optional[str]) -> None:
        pkts = train.packets
        if self.dead:
            self.packets_dropped_dead += len(pkts)
            return
        first = pkts[0]
        if self.inc_handler is not None and first.kind.name == "INC_REDUCE":
            # INC traffic never rides trains (sent per-packet by the tree
            # logic); fan back out defensively if one ever shows up.
            for p in pkts:
                self._forward(p, in_port)
            return
        d = self.forwarding_delay
        # Per-packet injection instants downstream: each packet would have
        # been forwarded ``d`` after its own arrival here.  ``a + d`` is the
        # same float expression the per-packet call_later path evaluates.
        inj = [a + d for a in train.arrivals] if d > 0.0 else train.arrivals
        n = len(pkts)
        trc = self.trace
        if first.is_multicast:
            tree_ports = self.mcast_table.get(first.mcast_gid)
            if tree_ports is None:
                self.packets_dropped_no_route += n
                return
            for neighbor in sorted(tree_ports):
                if neighbor == in_port:
                    continue
                clone = [p.clone_for_fanout() for p in pkts]
                self.ports[neighbor].transmit_train(clone, injections=inj)
                self.packets_forwarded += n
                if trc is not None:
                    trc.instant("switch.relay", self.sim.now, {"pkts": n})
        else:
            neighbor = self.unicast_table.get(first.dst)
            if neighbor is None:
                self.packets_dropped_no_route += n
                return
            self.ports[neighbor].transmit_train(pkts, injections=inj)
            self.packets_forwarded += n
            if trc is not None:
                trc.instant("switch.relay", self.sim.now, {"pkts": n})

    # -------------------------------------------------------------- counters

    @property
    def egress_wire_bytes(self) -> int:
        """Total wire bytes transmitted out of all ports (PortXmitData)."""
        return sum(ch.bytes_sent for ch in self.ports.values())

    @property
    def egress_payload_bytes(self) -> int:
        return sum(ch.payload_bytes_sent for ch in self.ports.values())

    def reset_counters(self) -> None:
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        for ch in self.ports.values():
            ch.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
