"""Fabric partitioning for the conservative parallel-DES engine (DESIGN §6f).

The parallel fast-forward engine shards per-host simulation state across
worker processes.  The shard boundary runs along *switch* edges: every
host lives in the shard of its attachment switch, host-bearing switches
are split into contiguous groups, and core/spine switches stay with the
coordinator (shard 0).  All traffic that crosses shards therefore rides
a switch-to-switch *cut edge*, whose propagation latency is the
conservative lookahead bound: a shard may safely advance its local clock
to ``t + lookahead`` before it can possibly observe an event injected at
``t`` on the far side of any cut.

The partition is planner-aware in the sense that it is computed from the
same :class:`~repro.net.topology.Topology` structures the multicast
planners consume (``attach_point``, ``switch_names``, ``core_switches``)
and respects family-canonical switch ordering, so fat-tree leaf groups,
torus rows and dragonfly groups each map to contiguous shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net.topology import TopologyError, is_host

__all__ = ["FabricPartition", "PartitionError", "partition_fabric",
           "validate_partition"]


class PartitionError(TopologyError):
    """A requested partition is inconsistent with the fabric."""


@dataclass
class FabricPartition:
    """A sharding of one fabric for the parallel engine.

    ``switch_shard`` assigns every switch; ``host_shard[h]`` equals the
    shard of host *h*'s rail-0 attachment switch.  ``cut_edges`` lists
    the undirected switch-switch edges whose endpoints land in different
    shards; ``lookahead`` is the minimum propagation latency over them
    (``inf`` when nothing is cut — a single-shard partition).
    """

    n_shards: int
    switch_shard: Dict[str, int]
    host_shard: List[int]
    groups: List[List[str]] = field(default_factory=list)
    cut_edges: List[Tuple[str, str]] = field(default_factory=list)
    lookahead: float = float("inf")

    def hosts_of(self, shard: int) -> List[int]:
        return [h for h, s in enumerate(self.host_shard) if s == shard]


def partition_fabric(fabric, n_shards: int) -> FabricPartition:
    """Split *fabric* into at most *n_shards* shards along switch
    boundaries.

    Host-bearing switches, in family-canonical order
    (:attr:`Topology.switch_names`), are grouped into contiguous blocks
    balanced by attached-host count; switches with no hosts (spines,
    cores) belong to shard 0, which the coordinator owns.  The effective
    shard count is clamped to the number of host-bearing switches — a
    shard smaller than one switch would put a host-to-switch edge on the
    cut, and those are exactly the edges the engine keeps shard-local.
    """
    if n_shards < 1:
        raise PartitionError(f"n_shards must be >= 1, got {n_shards}")
    topo = fabric.topology
    hosts_by_switch: Dict[str, int] = {}
    for h in range(topo.n_hosts):
        sw = topo.attach_point(h, rail=0)
        hosts_by_switch[sw] = hosts_by_switch.get(sw, 0) + 1
    hosting = [s for s in topo.switch_names if s in hosts_by_switch]
    if not hosting:
        raise PartitionError("fabric has no host-bearing switches")
    k = min(n_shards, len(hosting))

    # Contiguous blocks over the family-canonical switch order, balanced
    # by host count: block i takes switches until it holds >= (i+1)/k of
    # all hosts.  Deterministic, and identical on every machine.
    switch_shard: Dict[str, int] = {}
    groups: List[List[str]] = [[] for _ in range(k)]
    total = topo.n_hosts
    taken = 0
    shard = 0
    for sw in hosting:
        if shard < k - 1 and taken * k >= (shard + 1) * total:
            shard += 1
        switch_shard[sw] = shard
        groups[shard].append(sw)
        taken += hosts_by_switch[sw]
    for sw in topo.switch_names:
        if sw not in switch_shard:  # spine/core: coordinator-owned
            switch_shard[sw] = 0
            groups[0].append(sw)

    host_shard = [switch_shard[topo.attach_point(h, rail=0)]
                  for h in range(topo.n_hosts)]

    cut_edges: List[Tuple[str, str]] = []
    lookahead = float("inf")
    for a, b in topo.edges:
        if is_host(a) or is_host(b):
            continue
        if switch_shard[a] != switch_shard[b]:
            cut_edges.append((a, b))
            for src, dst in ((a, b), (b, a)):
                ch = fabric.channels.get((src, dst))
                if ch is not None and ch.latency < lookahead:
                    lookahead = ch.latency

    part = FabricPartition(n_shards=k, switch_shard=switch_shard,
                           host_shard=host_shard, groups=groups,
                           cut_edges=cut_edges, lookahead=lookahead)
    validate_partition(fabric, part)
    return part


def validate_partition(fabric, part: FabricPartition) -> None:
    """Prove the invariants the parallel engine relies on."""
    topo = fabric.topology
    if part.n_shards < 1:
        raise PartitionError("partition has no shards")
    for sw in topo.switch_names:
        s = part.switch_shard.get(sw)
        if s is None or not 0 <= s < part.n_shards:
            raise PartitionError(f"switch {sw!r} has no valid shard")
    if len(part.host_shard) != topo.n_hosts:
        raise PartitionError("host_shard must cover every host")
    for h, s in enumerate(part.host_shard):
        attach = topo.attach_point(h, rail=0)
        if s != part.switch_shard[attach]:
            raise PartitionError(
                f"host {h} in shard {s} but its attachment {attach!r} is "
                f"in shard {part.switch_shard[attach]}"
            )
    seen = set()
    for group in part.groups:
        for sw in group:
            if sw in seen:
                raise PartitionError(f"switch {sw!r} in two groups")
            seen.add(sw)
    for a, b in part.cut_edges:
        if is_host(a) or is_host(b):
            raise PartitionError(
                f"cut edge ({a!r}, {b!r}) touches a host: host links must "
                "stay shard-local"
            )
        if part.switch_shard[a] == part.switch_shard[b]:
            raise PartitionError(f"edge ({a!r}, {b!r}) does not cross shards")
    if part.cut_edges and not part.lookahead > 0.0:
        raise PartitionError(
            "cut edges need positive propagation latency: a zero-latency "
            "cut gives the conservative engine no lookahead window"
        )
