"""MulticastPlan: the planner's output contract.

A plan is everything the fabric/SM layer needs to program one multicast
group: the root, the spanning-tree adjacency, which rail (plane) the
group lives in, the per-edge rail assignment, and a chain-count hint for
the sequenced allgather.  The validator proves the structural invariants
every consumer relies on — spanning, tree-ness, plane purity, hosts as
leaves — plus the cross-plan link-load bound the paper's edge-disjoint
chain argument needs.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..topology import Topology, TopologyError, host_name, is_host

__all__ = ["MulticastPlan", "PlanError", "validate_plan", "validate_disjointness"]


class PlanError(TopologyError):
    """A plan failed structural validation (subclass of TopologyError)."""


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class MulticastPlan:
    """One multicast group's programmed shape.

    Attributes
    ----------
    gid:
        The multicast group id the plan serves.
    kind:
        Planner family that produced it ("fat_tree", "torus",
        "dragonfly", "multi_rail").
    root:
        Tree root (a switch, or a host on switchless fabrics).
    tree:
        ``node → set(tree neighbors)`` — the exact adjacency the switch
        mcast tables are programmed from.
    members:
        Sorted member host ids.
    rail:
        The plane the whole tree lives in (0 on single-rail fabrics).
    edge_rails:
        Canonical tree-edge key → rail.  Single-plane plans map every
        edge to ``rail``; kept explicit so validators and multi-plan
        overlays never re-derive it from the topology.
    disjointness:
        Declared sharing contract: ``"exclusive-root"`` (root-incident
        edges belong to this gid alone — the fat-tree spine argument) or
        ``"shared"`` (trees of different gids may overlap; per-link load
        is bounded by the validator instead).
    n_chains_hint:
        Planner-recommended sequencer chain count — always ≥ 1 and a
        divisor of ``len(members)``.
    """

    gid: int
    kind: str
    root: str
    tree: Dict[str, Set[str]]
    members: Tuple[int, ...]
    rail: int = 0
    edge_rails: Dict[Tuple[str, str], int] = field(default_factory=dict)
    disjointness: str = "shared"
    n_chains_hint: int = 1

    # ---------------------------------------------------------------- views

    def tree_edges(self) -> List[Tuple[str, str]]:
        """Canonical (sorted-pair) tree edge list."""
        out: Set[Tuple[str, str]] = set()
        for node, nbrs in self.tree.items():
            for nbr in nbrs:
                out.add(_edge_key(node, nbr))
        return sorted(out)

    def tree_nodes(self) -> List[str]:
        return sorted(self.tree)

    def chains(self, n_chains: Optional[int] = None) -> List[List[int]]:
        """Partition members into ``n_chains`` round-robin chains.

        ``None`` uses the plan's own hint.  Mirrors the sequencer's
        striding so chain *c* owns members ``c, c+M, c+2M, …`` of the
        sorted member list.
        """
        m = self.n_chains_hint if n_chains is None else n_chains
        if m < 1 or len(self.members) % m:
            raise PlanError(
                f"chain count {m} does not divide {len(self.members)} members")
        return [list(self.members[c::m]) for c in range(m)]

    def describe(self) -> str:
        return (f"plan(gid={self.gid}, kind={self.kind}, root={self.root}, "
                f"rail={self.rail}, members={len(self.members)}, "
                f"edges={len(self.tree_edges())}, "
                f"chains={self.n_chains_hint}, {self.disjointness})")


def validate_plan(
    topology: Topology,
    plan: MulticastPlan,
    max_link_load: int = 1,
) -> None:
    """Prove a plan's structural invariants; raise :class:`PlanError`.

    Checks: every member host is spanned; the adjacency is a single
    connected tree (``|E| = |V| - 1``); every tree edge exists in the
    topology; every edge's rail matches both the topology's assignment
    and the plan's declared rail (plane purity); hosts are leaves; the
    per-link load of this tree never exceeds ``max_link_load`` (trivially
    1 for a tree, kept explicit for overlay checks).
    """
    tree = plan.tree
    if not tree:
        raise PlanError(f"gid {plan.gid}: empty tree")
    if plan.root not in tree:
        raise PlanError(f"gid {plan.gid}: root {plan.root!r} not in tree")

    # Symmetry + edge existence + rail purity.
    edges = plan.tree_edges()
    for a, b in edges:
        if b not in tree.get(a, ()) or a not in tree.get(b, ()):
            raise PlanError(f"gid {plan.gid}: asymmetric tree edge {(a, b)}")
        key = _edge_key(a, b)
        if key not in topology.edge_rails:
            raise PlanError(f"gid {plan.gid}: tree edge {key} not in topology")
        topo_rail = topology.edge_rails[key]
        plan_rail = plan.edge_rails.get(key, plan.rail)
        if topo_rail != plan_rail:
            raise PlanError(
                f"gid {plan.gid}: edge {key} is rail {topo_rail} in the "
                f"topology but rail {plan_rail} in the plan")
        if topo_rail != plan.rail:
            raise PlanError(
                f"gid {plan.gid}: edge {key} (rail {topo_rail}) leaks out "
                f"of plane {plan.rail}")

    # Tree-ness: connected from the root, |E| = |V| - 1.
    nodes = set(tree)
    if len(edges) != len(nodes) - 1:
        raise PlanError(
            f"gid {plan.gid}: {len(edges)} edges over {len(nodes)} nodes "
            "is not a tree")
    seen = {plan.root}
    queue = collections.deque([plan.root])
    while queue:
        node = queue.popleft()
        for nbr in tree[node]:
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    if seen != nodes:
        raise PlanError(
            f"gid {plan.gid}: tree is disconnected "
            f"({len(nodes) - len(seen)} nodes unreachable from the root)")

    # Spanning + hosts are leaves (never relay points).
    member_names = {host_name(m) for m in plan.members}
    missing = member_names - nodes
    if missing:
        raise PlanError(f"gid {plan.gid}: members not spanned: {sorted(missing)}")
    switchless = not topology.switch_names
    for node in nodes:
        if is_host(node) and not switchless and len(tree[node]) != 1:
            raise PlanError(
                f"gid {plan.gid}: host {node} has tree degree "
                f"{len(tree[node])}; hosts must be leaves")

    # Per-link load within the plan (a tree uses each link once; the
    # bound matters for overlays, but catch duplicates defensively).
    load = collections.Counter(edges)
    worst = max(load.values())
    if worst > max_link_load:
        raise PlanError(
            f"gid {plan.gid}: link load {worst} exceeds bound {max_link_load}")


def validate_disjointness(
    topology: Topology,
    plans: Sequence[MulticastPlan],
    max_link_load: Optional[int] = None,
) -> Dict[Tuple[str, str], int]:
    """Cross-plan overlay check; returns the per-link load map.

    Plans declaring ``"exclusive-root"`` must not share their
    root-incident edges with any other plan (the fat-tree spine-chain
    edge-disjointness the paper's bandwidth argument rests on).  With
    ``max_link_load`` set, the summed per-link load of all plans must
    stay within it.
    """
    load: collections.Counter = collections.Counter()
    owners: Dict[Tuple[str, str], List[int]] = collections.defaultdict(list)
    for plan in plans:
        for key in plan.tree_edges():
            load[key] += 1
            owners[key].append(plan.gid)
    for plan in plans:
        if plan.disjointness != "exclusive-root":
            continue
        for nbr in plan.tree[plan.root]:
            key = _edge_key(plan.root, nbr)
            if len(owners[key]) > 1:
                raise PlanError(
                    f"root edge {key} of gid {plan.gid} is shared by gids "
                    f"{owners[key]} despite exclusive-root declaration")
    if max_link_load is not None and load:
        key, worst = load.most_common(1)[0]
        if worst > max_link_load:
            raise PlanError(
                f"link {key} carries {worst} trees, bound is {max_link_load}")
    return dict(load)
