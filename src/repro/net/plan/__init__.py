"""Topology-aware multicast planning.

The planner turns a :class:`~repro.net.topology.Topology` plus a group
id and member set into a :class:`MulticastPlan` — root, tree adjacency,
plane (rail) assignment, and chain hints — which the fabric programs
into switch multicast tables.  ``validate_plan`` /
``validate_disjointness`` prove the invariants (spanning, tree-ness,
plane purity, per-link load) each family promises.
"""

from .partition import (FabricPartition, PartitionError, partition_fabric,
                        validate_partition)
from .plan import (MulticastPlan, PlanError, validate_disjointness,
                   validate_plan)
from .planners import plan_mcast

__all__ = [
    "FabricPartition",
    "MulticastPlan",
    "PartitionError",
    "PlanError",
    "partition_fabric",
    "plan_mcast",
    "validate_plan",
    "validate_disjointness",
    "validate_partition",
]
