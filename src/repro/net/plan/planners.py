"""Per-family multicast planners.

``plan_mcast`` dispatches on ``topology.kind``:

* fat-tree family (star / leaf_spine / fat_tree3 / custom / switchless)
  — delegates to the legacy spine-rooted BFS in
  :meth:`Topology.mcast_tree`, so fat-tree plans are **bit-identical**
  to what the fabric programmed before the planner existed (the
  equivalence test gates this).
* torus — dimension-ordered (e-cube) route union from a gid-rotated
  root router, the bine-tree construction generalized to any dims.
* dragonfly — group-local clique fan-out from the root plus one global
  link per member group.
* multi_rail — the group is pinned to plane ``gid % rails`` and planned
  with the base family's planner restricted to that plane; if a whole
  plane is dead the group fails over to the next surviving plane.

Every planner falls back to the generic BFS tree when switch deaths
make its structured construction impossible — repair re-plans over
survivors on any topology, degrading shape before giving up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..topology import (Topology, TopologyError, host_name, is_host,
                        torus_coord, torus_id)
from .plan import MulticastPlan, PlanError

__all__ = ["plan_mcast"]


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a < b else (b, a)


def _chain_hint(n_members: int, capacity: int) -> int:
    """Largest chain count ≤ *capacity* that divides the member count."""
    best = 1
    for m in range(1, max(1, min(n_members, capacity)) + 1):
        if n_members % m == 0:
            best = m
    return best


def _plan_edge_rails(topo: Topology, tree: Dict[str, Set[str]]) -> Dict[Tuple[str, str], int]:
    rails: Dict[Tuple[str, str], int] = {}
    for node, nbrs in tree.items():
        for nbr in nbrs:
            key = _edge_key(node, nbr)
            rails[key] = topo.edge_rails[key]
    return rails


def _finish(topo: Topology, gid: int, kind: str, root: str,
            tree: Dict[str, Set[str]], members: Sequence[int],
            rail: int, disjointness: str, capacity: int) -> MulticastPlan:
    members = tuple(sorted(set(members)))
    return MulticastPlan(
        gid=gid, kind=kind, root=root, tree=tree, members=members,
        rail=rail, edge_rails=_plan_edge_rails(topo, tree),
        disjointness=disjointness,
        n_chains_hint=_chain_hint(len(members), capacity),
    )


def _tree_from_parents(parent: Dict[str, Optional[str]]) -> Dict[str, Set[str]]:
    tree: Dict[str, Set[str]] = {}
    for node, up in parent.items():
        tree.setdefault(node, set())
        if up is not None:
            tree[node].add(up)
            tree.setdefault(up, set()).add(node)
    return tree


def _dead_switches(topo: Topology, exclude: Optional[Set[str]]) -> Set[str]:
    if not exclude:
        return set()
    return {n for n in exclude if not is_host(n)}


# ------------------------------------------------------------ fat-tree family

def _plan_fat_tree(topo: Topology, gid: int, members: Sequence[int],
                   exclude: Optional[Set[str]]) -> MulticastPlan:
    tree = topo.mcast_tree(gid, members, exclude)
    root = topo.mcast_root(gid, exclude)
    if root is None:  # switchless back-to-back: root at the lower host
        root = host_name(min(members))
        return _finish(topo, gid, "fat_tree", root, tree, members,
                       rail=0, disjointness="shared", capacity=1)
    cores = [c for c in topo.core_switches if not (exclude and c in exclude)]
    # The spine edge-disjointness argument needs root diversity: with a
    # single core (star) every gid roots at the same switch and root
    # edges are inherently shared.
    disjointness = "exclusive-root" if len(cores) > 1 else "shared"
    return _finish(topo, gid, "fat_tree", root, tree, members,
                   rail=0, disjointness=disjointness, capacity=len(cores))


# ------------------------------------------------------------------- torus

def _plan_torus(topo: Topology, gid: int, members: Sequence[int],
                exclude: Optional[Set[str]]) -> MulticastPlan:
    dims: List[int] = list(topo.params["dims"])  # type: ignore[index]
    hosts_per_node = int(topo.params.get("hosts_per_node", 1))
    if _dead_switches(topo, exclude):
        # Dead routers break e-cube's fixed dimension order; repair
        # degrades to the generic BFS tree over the survivors.
        tree = topo.mcast_tree(gid, members, exclude)
        root = topo.mcast_root(gid, exclude)
        return _finish(topo, gid, "torus", root, tree, members,
                       rail=0, disjointness="shared", capacity=2 * len(dims))
    root = topo.mcast_root(gid, exclude)
    root_rid = topo.core_switches.index(root)
    root_coord = torus_coord(root_rid, dims)

    def rid_of(name_members: int) -> int:
        return name_members // hosts_per_node

    def rname(rid: int) -> str:
        return topo.core_switches[rid]

    # Union of dimension-ordered routes root → member router.  e-cube
    # routes are prefix-closed (the route to any intermediate node is
    # the corresponding prefix), so the union is a tree by construction.
    parent: Dict[str, Optional[str]] = {root: None}
    live = sorted(set(members))
    for m in live:
        target = torus_coord(rid_of(m), dims)
        cur = list(root_coord)
        for axis, size in enumerate(dims):
            t = target[axis]
            if cur[axis] == t or size == 1:
                continue
            fwd = (t - cur[axis]) % size
            step = 1 if fwd <= size - fwd else -1
            while cur[axis] != t:
                prev = rname(torus_id(cur, dims))
                cur[axis] = (cur[axis] + step) % size
                node = rname(torus_id(cur, dims))
                if node not in parent:
                    parent[node] = prev
        router = rname(torus_id(cur, dims))
        h = host_name(m)
        if h not in parent:
            parent[h] = router
    tree = _tree_from_parents(parent)
    return _finish(topo, gid, "torus", root, tree, live,
                   rail=0, disjointness="shared", capacity=2 * len(dims))


# ---------------------------------------------------------------- dragonfly

def _plan_dragonfly(topo: Topology, gid: int, members: Sequence[int],
                    exclude: Optional[Set[str]]) -> MulticastPlan:
    n_groups = int(topo.params["n_groups"])  # type: ignore[index]
    R = int(topo.params["routers_per_group"])  # type: ignore[index]
    hosts_per_router = int(topo.params.get("hosts_per_router", 1))
    if _dead_switches(topo, exclude):
        tree = topo.mcast_tree(gid, members, exclude)
        root = topo.mcast_root(gid, exclude)
        return _finish(topo, gid, "dragonfly", root, tree, members,
                       rail=0, disjointness="shared", capacity=R)

    def rname(g: int, r: int) -> str:
        return f"g{g:02d}r{r:02d}"

    root = topo.mcast_root(gid, exclude)
    g0 = int(root[1:3])
    live = sorted(set(members))
    parent: Dict[str, Optional[str]] = {root: None}
    # Structured fan-out: root → group-local routers directly (clique),
    # one global link into each remote member group, then that group's
    # entry router cliques out to its member routers.
    for m in live:
        j = m // hosts_per_router
        g, r = j // R, j % R
        router = rname(g, r)
        if g == g0:
            if router not in parent:
                parent[router] = root
        else:
            gw_local = rname(g0, (g - g0 - 1) % R)
            gw_remote = rname(g, (g0 - g - 1) % R)
            if gw_local not in parent:
                parent[gw_local] = root
            if gw_remote not in parent:
                parent[gw_remote] = gw_local
            if router not in parent:
                parent[router] = gw_remote
        h = host_name(m)
        if h not in parent:
            parent[h] = router
    tree = _tree_from_parents(parent)
    return _finish(topo, gid, "dragonfly", root, tree, live,
                   rail=0, disjointness="shared", capacity=R)


# --------------------------------------------------------------- multi-rail

def _plan_multi_rail(topo: Topology, gid: int, members: Sequence[int],
                     exclude: Optional[Set[str]]) -> MulticastPlan:
    dead = set(exclude or ())
    last_err: Optional[Exception] = None
    # Nezha-style striping: gid g lives in plane g % rails.  If that
    # plane cannot host the group (all its cores dead), fail over to the
    # next plane — planes only meet at hosts, so any one suffices.
    for attempt in range(topo.rails):
        rail = (gid + attempt) % topo.rails
        plane_block = {s for s in topo.switch_names
                       if topo.switch_rail.get(s, 0) != rail}
        # Plane-local group id: gids land on a plane with stride =
        # rails, so rotating roots by gid alone would alias whenever
        # the stride shares a factor with the plane's core count.
        pgid = gid // topo.rails
        try:
            tree = topo.mcast_tree(pgid, members, exclude=dead | plane_block)
            root = topo.mcast_root(pgid, exclude=dead | plane_block)
        except (TopologyError, ValueError) as err:
            last_err = err
            continue
        cores = [c for c in topo.core_switches
                 if topo.switch_rail.get(c, 0) == rail and c not in dead]
        # A failed-over group squats on another plane's spines; its
        # root edges are no longer exclusively its own.
        disjointness = "exclusive-root" if attempt == 0 else "shared"
        return _finish(topo, gid, "multi_rail", root, tree, members,
                       rail=rail, disjointness=disjointness,
                       capacity=len(cores))
    raise PlanError(
        f"gid {gid}: no surviving plane can host the group "
        f"({topo.rails} rails tried): {last_err}")


# ---------------------------------------------------------------- dispatch

_PLANNERS = {
    "torus": _plan_torus,
    "dragonfly": _plan_dragonfly,
    "multi_rail": _plan_multi_rail,
}


def plan_mcast(
    topology: Topology,
    gid: int,
    members: Sequence[int],
    exclude: Optional[Set[str]] = None,
) -> MulticastPlan:
    """Plan one multicast group on any topology family.

    Fat-tree-family topologies reproduce the legacy spine-rooted tree
    bit-identically; the zoo families get structured trees with BFS
    degradation under switch death.  ``exclude`` names dead nodes
    (hosts and/or switches) — the repair path re-plans over survivors.
    """
    planner = _PLANNERS.get(topology.kind, _plan_fat_tree)
    return planner(topology, gid, members, exclude)
