"""Topology construction and routing.

Node naming convention: host *i* is ``"h{i}"``; switches carry arbitrary
(zero-padded) names such as ``"leaf003"`` or ``"spine01"``.

Routing is *static and destination-based*, like an InfiniBand subnet
manager's LFT programming: among equal-cost next hops toward destination
``d`` a switch deterministically picks candidate ``d % n_candidates``
(sorted by name).  This spreads flows to distinct destinations across the
spine level — the property the paper's Fat-Tree arguments rely on — while
keeping every run reproducible.

Multicast groups get a spanning tree rooted at a core switch chosen from
the group id, again mirroring SM behaviour: the tree is the union of the
deterministic unicast paths from the root to every member.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Topology", "TopologySpec", "host_name", "host_id", "is_host"]


def host_name(i: int) -> str:
    """Canonical node name for host *i*."""
    return f"h{i}"


def host_id(name: str) -> int:
    """Inverse of :func:`host_name`."""
    if not is_host(name):
        raise ValueError(f"{name!r} is not a host node")
    return int(name[1:])


def is_host(name: str) -> bool:
    return name.startswith("h") and name[1:].isdigit()


class Topology:
    """An undirected graph of hosts and switches with routing helpers.

    Parameters
    ----------
    n_hosts:
        Number of hosts; they are named ``h0 … h{n-1}``.
    edges:
        Undirected edges between node names.
    core_switches:
        Switches eligible as multicast tree roots (spines in a fat-tree).
        Defaults to all switches.
    kind:
        Human-readable tag ("leaf_spine", "star", ...).
    """

    def __init__(
        self,
        n_hosts: int,
        edges: Iterable[Tuple[str, str]],
        core_switches: Optional[Sequence[str]] = None,
        kind: str = "custom",
    ) -> None:
        if n_hosts < 1:
            raise ValueError("need at least one host")
        self.n_hosts = n_hosts
        self.kind = kind
        self.adjacency: Dict[str, List[str]] = collections.defaultdict(list)
        self.edges: List[Tuple[str, str]] = []
        seen = set()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on {a}")
            key = (a, b) if a < b else (b, a)
            if key in seen:
                continue
            seen.add(key)
            self.edges.append(key)
            self.adjacency[a].append(b)
            self.adjacency[b].append(a)
        for name in self.adjacency:
            self.adjacency[name].sort()
        self.hosts = [host_name(i) for i in range(n_hosts)]
        for h in self.hosts:
            if h not in self.adjacency:
                raise ValueError(f"host {h} is not connected")
        self.switch_names = sorted(n for n in self.adjacency if not is_host(n))
        self.core_switches = (
            sorted(core_switches) if core_switches is not None else list(self.switch_names)
        )
        for h in self.hosts:
            if len(self.adjacency[h]) != 1:
                raise ValueError(f"host {h} must have exactly one attachment")
        self._dist_cache: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------- accessors

    def attach_point(self, host: int) -> str:
        """The node (switch, or peer host in back-to-back) host *i* plugs into."""
        return self.adjacency[host_name(host)][0]

    def neighbors(self, name: str) -> List[str]:
        return self.adjacency[name]

    # --------------------------------------------------------------- routing

    def _distances_to(self, dst: int, exclude: Optional[Set[str]] = None) -> Dict[str, int]:
        """BFS hop counts from every node to host *dst* (cached when no
        exclusion set is given; repair-time reroutes pass ``exclude`` and
        are computed fresh — failures are rare, routing is hot)."""
        if not exclude:
            cached = self._dist_cache.get(dst)
            if cached is not None:
                return cached
        start = host_name(dst)
        dist = {start: 0}
        queue = collections.deque([start])
        while queue:
            node = queue.popleft()
            for nxt in self.adjacency[node]:
                if nxt not in dist and not (exclude and nxt in exclude):
                    dist[nxt] = dist[node] + 1
                    queue.append(nxt)
        if not exclude:
            self._dist_cache[dst] = dist
        return dist

    def next_hop(self, node: str, dst: int, exclude: Optional[Set[str]] = None) -> str:
        """Deterministic next hop from *node* toward host *dst*, avoiding
        any node named in ``exclude`` (dead switches, for reroutes)."""
        if node == host_name(dst):
            raise ValueError("already at destination")
        dist = self._distances_to(dst, exclude)
        if node not in dist:
            raise ValueError(f"{node} cannot reach h{dst}")
        d = dist[node]
        candidates = [n for n in self.adjacency[node] if dist.get(n, 1 << 30) == d - 1]
        assert candidates, "BFS invariant violated"
        return candidates[dst % len(candidates)]

    def path(self, src: int, dst: int) -> List[str]:
        """Node names along the deterministic route from host src to dst."""
        node = host_name(src)
        out = [node]
        while node != host_name(dst):
            node = self.next_hop(node, dst)
            out.append(node)
        return out

    def unicast_tables(self, exclude: Optional[Set[str]] = None) -> Dict[str, Dict[int, str]]:
        """Per-switch forwarding tables: ``switch → {dst_host → neighbor}``.

        With ``exclude``, routes detour around the named dead nodes
        (excluded switches get empty tables; unreachable destinations are
        simply absent from the surviving tables).
        """
        tables: Dict[str, Dict[int, str]] = {sw: {} for sw in self.switch_names}
        for dst in range(self.n_hosts):
            if exclude and host_name(dst) in exclude:
                continue
            dist = self._distances_to(dst, exclude)
            for sw in self.switch_names:
                if exclude and sw in exclude:
                    continue
                if sw in dist and dist[sw] > 0:
                    tables[sw][dst] = self.next_hop(sw, dst, exclude)
        return tables

    # ------------------------------------------------------------- multicast

    def mcast_root(self, gid: int, exclude: Optional[Set[str]] = None) -> Optional[str]:
        """Core switch acting as the spanning-tree root for group *gid*.

        With ``exclude``, dead cores are skipped and the root is picked
        from the survivors with the same ``gid``-based rotation — every
        surviving rank computes the same answer from the same dead set.
        """
        cores = self.core_switches
        if exclude:
            cores = [c for c in cores if c not in exclude]
        if not cores:
            return None
        return cores[gid % len(cores)]

    def mcast_tree(
        self,
        gid: int,
        members: Sequence[int],
        exclude: Optional[Set[str]] = None,
    ) -> Dict[str, Set[str]]:
        """Spanning-tree adjacency for a multicast group.

        Returns ``node → set(tree neighbors)`` covering all member hosts.
        Built as the union of deterministic unicast paths root→member, so
        the tree inherits the routing's spine choice determinism.  With
        ``exclude``, the tree avoids the named dead nodes entirely — the
        repair path for a switch-down reroute via a surviving spine.
        """
        members = sorted(set(members))
        if len(members) < 2:
            raise ValueError("a multicast group needs at least 2 members")
        tree: Dict[str, Set[str]] = collections.defaultdict(set)
        root = self.mcast_root(gid, exclude)
        if root is None:
            # Switchless topology (back-to-back): direct host-host edge.
            if len(members) != 2:
                raise ValueError("switchless multicast only supports 2 members")
            a, b = host_name(members[0]), host_name(members[1])
            if b not in self.adjacency[a]:
                raise ValueError("members are not directly connected")
            tree[a].add(b)
            tree[b].add(a)
            return dict(tree)
        # Build a BFS spanning tree from the root (deterministic neighbor
        # order, rotated by gid so distinct groups use distinct links), then
        # keep only the branches leading to members.  A per-destination
        # ECMP walk would not do: different members may pick different
        # equal-cost mid switches, and the union would contain cycles on
        # 3-level fat-trees.
        parent: Dict[str, Optional[str]] = {root: None}
        order = [root]
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            neighbors = self.adjacency[node]
            rot = gid % len(neighbors) if neighbors else 0
            for nxt in neighbors[rot:] + neighbors[:rot]:
                if nxt not in parent and not (exclude and nxt in exclude):
                    parent[nxt] = node
                    order.append(nxt)
        for m in members:
            node = host_name(m)
            if node not in parent:
                raise ValueError(f"member h{m} unreachable from {root}")
            while parent[node] is not None:
                up = parent[node]
                tree[node].add(up)
                tree[up].add(node)
                node = up
        return dict(tree)

    # ------------------------------------------------------------ factories

    @classmethod
    def back_to_back(cls) -> "Topology":
        """Two hosts wired NIC-to-NIC (the paper's DPA testbed)."""
        return cls(2, [(host_name(0), host_name(1))], core_switches=[], kind="back_to_back")

    @classmethod
    def star(cls, n_hosts: int) -> "Topology":
        """All hosts on one switch (crossbar)."""
        edges = [(host_name(i), "sw000") for i in range(n_hosts)]
        return cls(n_hosts, edges, kind="star")

    @classmethod
    def leaf_spine(
        cls, n_hosts: int, n_leaf: int, n_spine: int, hosts_per_leaf: Optional[int] = None
    ) -> "Topology":
        """Two-level fat-tree: every leaf connects to every spine.

        Hosts fill leaves sequentially (``hosts_per_leaf`` each, default
        ``ceil(n_hosts / n_leaf)``).
        """
        if hosts_per_leaf is None:
            hosts_per_leaf = -(-n_hosts // n_leaf)
        if n_leaf * hosts_per_leaf < n_hosts:
            raise ValueError("not enough leaf capacity for hosts")
        edges: List[Tuple[str, str]] = []
        leaves = [f"leaf{i:03d}" for i in range(n_leaf)]
        spines = [f"spine{i:03d}" for i in range(n_spine)]
        for i in range(n_hosts):
            edges.append((host_name(i), leaves[i // hosts_per_leaf]))
        for leaf in leaves:
            for spine in spines:
                edges.append((leaf, spine))
        return cls(n_hosts, edges, core_switches=spines, kind="leaf_spine")

    @classmethod
    def testbed_188(cls) -> "Topology":
        """The paper's UCC testbed: 188 hosts, 18 switches (12 leaf + 6
        spine, 16 hosts per leaf — consistent with 36-port SX6036)."""
        return cls.leaf_spine(188, n_leaf=12, n_spine=6, hosts_per_leaf=16)

    @classmethod
    def fat_tree3(
        cls,
        n_hosts: int,
        n_leaf: int,
        n_mid: int,
        n_core: int,
        hosts_per_leaf: Optional[int] = None,
        mid_group: Optional[int] = None,
    ) -> "Topology":
        """Three-level fat-tree (the Fig 2 scale shape, e.g. 1024 nodes on
        radix-32 switches).

        Leaves are partitioned into pods; each pod connects to a group of
        ``mid_group`` middle switches (default: evenly split); every middle
        switch connects to every core switch.  Multicast trees root at the
        core level.
        """
        if hosts_per_leaf is None:
            hosts_per_leaf = -(-n_hosts // n_leaf)
        if n_leaf * hosts_per_leaf < n_hosts:
            raise ValueError("not enough leaf capacity for hosts")
        if mid_group is None:
            mid_group = max(1, n_mid // max(1, n_leaf // 4))
        leaves = [f"leaf{i:03d}" for i in range(n_leaf)]
        mids = [f"mid{i:03d}" for i in range(n_mid)]
        cores = [f"core{i:03d}" for i in range(n_core)]
        edges: List[Tuple[str, str]] = []
        for i in range(n_hosts):
            edges.append((host_name(i), leaves[i // hosts_per_leaf]))
        # Pods: contiguous groups of leaves share a group of mid switches.
        n_groups = max(1, n_mid // mid_group)
        for li, leaf in enumerate(leaves):
            group = (li * n_groups // n_leaf) % n_groups
            for m in range(mid_group):
                edges.append((leaf, mids[(group * mid_group + m) % n_mid]))
        for mid in mids:
            for core in cores:
                edges.append((mid, core))
        return cls(n_hosts, edges, core_switches=cores, kind="fat_tree3")


@dataclass
class TopologySpec:
    """Declarative topology description (handy for experiment configs)."""

    kind: str = "star"
    n_hosts: int = 2
    params: Dict[str, int] = field(default_factory=dict)

    def build(self) -> Topology:
        if self.kind == "star":
            return Topology.star(self.n_hosts)
        if self.kind == "back_to_back":
            return Topology.back_to_back()
        if self.kind == "leaf_spine":
            return Topology.leaf_spine(
                self.n_hosts,
                n_leaf=self.params["n_leaf"],
                n_spine=self.params["n_spine"],
                hosts_per_leaf=self.params.get("hosts_per_leaf"),
            )
        if self.kind == "testbed_188":
            return Topology.testbed_188()
        raise ValueError(f"unknown topology kind {self.kind!r}")
