"""Topology construction and routing.

Node naming convention: host *i* is ``"h{i}"``; switches carry arbitrary
(zero-padded) names such as ``"leaf003"`` or ``"spine01"``.

Routing is *static and destination-based*, like an InfiniBand subnet
manager's LFT programming: among equal-cost next hops toward destination
``d`` a switch deterministically picks candidate ``d % n_candidates``
(sorted by name).  This spreads flows to distinct destinations across the
spine level — the property the paper's Fat-Tree arguments rely on — while
keeping every run reproducible.

Multicast groups get a spanning tree rooted at a core switch chosen from
the group id, again mirroring SM behaviour: the tree is the union of the
deterministic unicast paths from the root to every member.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Topology",
    "TopologyError",
    "TopologySpec",
    "host_name",
    "host_id",
    "is_host",
    "torus_coord",
    "torus_id",
]


class TopologyError(ValueError):
    """Typed error for malformed topology specs and invalid plan inputs.

    Subclasses :class:`ValueError` so callers that guarded on the old
    untyped raises keep working; new code should catch this type.
    """


def host_name(i: int) -> str:
    """Canonical node name for host *i*."""
    return f"h{i}"


def host_id(name: str) -> int:
    """Inverse of :func:`host_name`."""
    if not is_host(name):
        raise ValueError(f"{name!r} is not a host node")
    return int(name[1:])


def is_host(name: str) -> bool:
    return name.startswith("h") and name[1:].isdigit()


def torus_coord(rank: int, dims: Sequence[int]) -> List[int]:
    """Rank → d-dimensional torus coordinates (row-major mixed radix).

    The generalization of the Fugaku bine-tree coordinate math to any
    dimension count: the last dimension varies fastest.
    """
    coord = []
    for size in reversed(dims):
        coord.append(rank % size)
        rank //= size
    return coord[::-1]


def torus_id(coord: Sequence[int], dims: Sequence[int]) -> int:
    """Inverse of :func:`torus_coord`."""
    rank = 0
    for c, size in zip(coord, dims):
        rank = rank * size + c
    return rank


class Topology:
    """An undirected graph of hosts and switches with routing helpers.

    Parameters
    ----------
    n_hosts:
        Number of hosts; they are named ``h0 … h{n-1}``.
    edges:
        Undirected edges between node names.
    core_switches:
        Switches eligible as multicast tree roots (spines in a fat-tree).
        Defaults to all switches.
    kind:
        Human-readable tag ("leaf_spine", "star", ...).
    rails:
        Parallel network planes (Nezha-style multi-rail).  Every host
        must have exactly one attachment per rail; ``edge_rails`` names
        the rail of every edge when ``rails > 1``.
    edge_rails:
        Canonical edge key → rail id.  Required for ``rails > 1``;
        ignored (all rail 0) otherwise.
    params:
        Declarative construction parameters (the factory's arguments),
        carried so specs and tuning keys can round-trip the family.
    """

    def __init__(
        self,
        n_hosts: int,
        edges: Iterable[Tuple[str, str]],
        core_switches: Optional[Sequence[str]] = None,
        kind: str = "custom",
        rails: int = 1,
        edge_rails: Optional[Dict[Tuple[str, str], int]] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> None:
        if n_hosts < 1:
            raise ValueError("need at least one host")
        if rails < 1:
            raise TopologyError("rails must be >= 1")
        self.n_hosts = n_hosts
        self.kind = kind
        self.rails = int(rails)
        self.params: Dict[str, object] = dict(params or {})
        self.adjacency: Dict[str, List[str]] = collections.defaultdict(list)
        self.edges: List[Tuple[str, str]] = []
        self.edge_rails: Dict[Tuple[str, str], int] = {}
        seen = set()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on {a}")
            key = (a, b) if a < b else (b, a)
            if key in seen:
                continue
            seen.add(key)
            self.edges.append(key)
            self.adjacency[a].append(b)
            self.adjacency[b].append(a)
            if self.rails > 1:
                if edge_rails is None or key not in edge_rails:
                    raise TopologyError(
                        f"multi-rail topology must name a rail for edge {key}")
                self.edge_rails[key] = int(edge_rails[key])
            else:
                self.edge_rails[key] = 0
        for name in self.adjacency:
            self.adjacency[name].sort()
        self.hosts = [host_name(i) for i in range(n_hosts)]
        for h in self.hosts:
            if h not in self.adjacency:
                raise ValueError(f"host {h} is not connected")
        self.switch_names = sorted(n for n in self.adjacency if not is_host(n))
        self.core_switches = (
            sorted(core_switches) if core_switches is not None else list(self.switch_names)
        )
        #: switch name → rail (a plane-crossing switch is rejected above 1 rail)
        self.switch_rail: Dict[str, int] = {}
        for (a, b), rail in self.edge_rails.items():
            for end in (a, b):
                if is_host(end):
                    continue
                prev = self.switch_rail.setdefault(end, rail)
                if prev != rail:
                    raise TopologyError(
                        f"switch {end} has edges in rails {prev} and {rail}; "
                        "planes must be disjoint above the hosts")
        #: host id → per-rail attachment (index = rail)
        self._host_ports: Dict[int, List[str]] = {}
        for i, h in enumerate(self.hosts):
            ports: List[Optional[str]] = [None] * self.rails
            for nbr in self.adjacency[h]:
                key = (h, nbr) if h < nbr else (nbr, h)
                rail = self.edge_rails[key]
                if not 0 <= rail < self.rails:
                    raise TopologyError(f"edge {key} names rail {rail} of {self.rails}")
                if ports[rail] is not None:
                    raise TopologyError(f"host {h} has two attachments on rail {rail}")
                ports[rail] = nbr
            missing = [r for r, p in enumerate(ports) if p is None]
            if missing:
                raise ValueError(
                    f"host {h} must have exactly one attachment per rail "
                    f"(missing rail(s) {missing})")
            self._host_ports[i] = [p for p in ports if p is not None]
        self._dist_cache: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------- accessors

    def attach_point(self, host: int, rail: int = 0) -> str:
        """The node host *i* plugs into on *rail* (switch, or peer host in
        back-to-back)."""
        return self._host_ports[host][rail]

    def host_ports(self, host: int) -> List[str]:
        """Per-rail attachment points of host *i* (index = rail)."""
        return list(self._host_ports[host])

    def rail_of_edge(self, a: str, b: str) -> int:
        """The rail (plane) an edge belongs to (0 on single-rail fabrics)."""
        key = (a, b) if a < b else (b, a)
        return self.edge_rails[key]

    def rail_switches(self, rail: int) -> List[str]:
        """Sorted switch names of one plane."""
        return sorted(s for s in self.switch_names
                      if self.switch_rail.get(s, 0) == rail)

    def connected_rail(self, hosts: Sequence[int],
                       exclude: Optional[Set[str]] = None,
                       prefer: Optional[int] = None) -> Optional[int]:
        """Lowest rail whose surviving plane still connects every host in
        *hosts* (``prefer``, when given, is tried first so a still-healthy
        incumbent plane is kept).  A plane "connects" the hosts when each
        one's attachment switch is alive and all attachments are mutually
        reachable through that plane's surviving switches.  Returns None
        when no single plane spans them — a partition the caller must
        surface rather than route around."""
        exclude = set(exclude or ())
        order = list(range(self.rails))
        if prefer is not None and prefer in order:
            order.remove(prefer)
            order.insert(0, prefer)
        for rail in order:
            try:
                attach = {self.attach_point(h, rail) for h in hosts}
            except ValueError:
                continue
            if attach & exclude:
                continue
            if not attach:
                return rail  # degenerate (no hosts): any plane will do
            seen = set()
            queue = collections.deque([next(iter(attach))])
            seen.add(next(iter(attach)))
            while queue:
                node = queue.popleft()
                for nb in self.adjacency[node]:
                    if nb in seen or nb in exclude or is_host(nb):
                        continue
                    if self.switch_rail.get(nb, 0) != rail:
                        continue
                    seen.add(nb)
                    queue.append(nb)
            if attach <= seen:
                return rail
        return None

    def neighbors(self, name: str) -> List[str]:
        return self.adjacency[name]

    # --------------------------------------------------------------- routing

    def _distances_to(self, dst: int, exclude: Optional[Set[str]] = None) -> Dict[str, int]:
        """BFS hop counts from every node to host *dst* (cached when no
        exclusion set is given; repair-time reroutes pass ``exclude`` and
        are computed fresh — failures are rare, routing is hot)."""
        if not exclude:
            cached = self._dist_cache.get(dst)
            if cached is not None:
                return cached
        start = host_name(dst)
        dist = {start: 0}
        queue = collections.deque([start])
        while queue:
            node = queue.popleft()
            if node != start and is_host(node):
                # NICs do not forward: a host other than the destination
                # can terminate a path but never extend one.  On single
                # rails this is a no-op (a host's only neighbor is its
                # parent); on multi-rail it keeps planes disjoint.
                continue
            for nxt in self.adjacency[node]:
                if nxt not in dist and not (exclude and nxt in exclude):
                    dist[nxt] = dist[node] + 1
                    queue.append(nxt)
        if not exclude:
            self._dist_cache[dst] = dist
        return dist

    def next_hop(self, node: str, dst: int, exclude: Optional[Set[str]] = None) -> str:
        """Deterministic next hop from *node* toward host *dst*, avoiding
        any node named in ``exclude`` (dead switches, for reroutes)."""
        if node == host_name(dst):
            raise ValueError("already at destination")
        dist = self._distances_to(dst, exclude)
        if node not in dist:
            raise ValueError(f"{node} cannot reach h{dst}")
        d = dist[node]
        target = host_name(dst)
        # A host is only ever a valid next hop when it IS the destination
        # — forwarding through a peer NIC is not a thing.  Single-rail
        # fabrics never produce such candidates; multi-rail ones do
        # (both of a host's leaves sit at equal distance via that host).
        candidates = [
            n for n in self.adjacency[node]
            if dist.get(n, 1 << 30) == d - 1 and (n == target or not is_host(n))
        ]
        assert candidates, "BFS invariant violated"
        return candidates[dst % len(candidates)]

    def path(self, src: int, dst: int) -> List[str]:
        """Node names along the deterministic route from host src to dst."""
        node = host_name(src)
        out = [node]
        while node != host_name(dst):
            node = self.next_hop(node, dst)
            out.append(node)
        return out

    def unicast_tables(self, exclude: Optional[Set[str]] = None) -> Dict[str, Dict[int, str]]:
        """Per-switch forwarding tables: ``switch → {dst_host → neighbor}``.

        With ``exclude``, routes detour around the named dead nodes
        (excluded switches get empty tables; unreachable destinations are
        simply absent from the surviving tables).

        The clean-path build is grouped: every host behind the same set of
        attachment switches shares one distance field (hosts do not
        forward, so a route to host *dst* is a switch-graph route to an
        attachment switch of *dst* plus the final host hop), so one
        multi-source switch-graph BFS per attachment group replaces one
        host-rooted BFS per destination.  Candidate lists keep adjacency
        order and the ``dst % len(candidates)`` tie-break, so the tables
        are identical entry-for-entry to the per-destination build — at
        4096 hosts this is the difference between minutes and seconds of
        fabric construction.
        """
        if exclude:
            # Repair-time reroute: rare, and the exclusion set breaks the
            # shared-distance-field argument at excluded nodes.  Keep the
            # simple per-destination build.
            tables: Dict[str, Dict[int, str]] = {
                sw: {} for sw in self.switch_names}
            for dst in range(self.n_hosts):
                if host_name(dst) in exclude:
                    continue
                dist = self._distances_to(dst, exclude)
                for sw in self.switch_names:
                    if sw in exclude:
                        continue
                    if sw in dist and dist[sw] > 0:
                        tables[sw][dst] = self.next_hop(sw, dst, exclude)
            return tables

        sw_names = self.switch_names
        sw_id = {sw: i for i, sw in enumerate(sw_names)}
        n_sw = len(sw_names)
        # Switch-only adjacency in original adjacency order (the order the
        # next_hop candidate tie-break depends on).
        sw_nbrs: List[List[int]] = [
            [sw_id[n] for n in self.adjacency[sw] if not is_host(n)]
            for sw in sw_names
        ]
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for dst in range(self.n_hosts):
            att = tuple(sw_id[n] for n in self.adjacency[host_name(dst)]
                        if not is_host(n))
            groups.setdefault(att, []).append(dst)

        tables = {sw: {} for sw in sw_names}
        for att, dsts in groups.items():
            # Multi-source BFS seeded at the attachment switches with
            # distance 1 — exactly the switch distances the host-rooted
            # BFS produces (the host itself is distance 0).
            dist = [-1] * n_sw
            queue = collections.deque()
            for s in att:
                if dist[s] < 0:
                    dist[s] = 1
                    queue.append(s)
            while queue:
                u = queue.popleft()
                d_next = dist[u] + 1
                for v in sw_nbrs[u]:
                    if dist[v] < 0:
                        dist[v] = d_next
                        queue.append(v)
            for si in range(n_sw):
                d = dist[si]
                if d < 0:
                    continue  # unreachable: entry absent, as before
                tbl = tables[sw_names[si]]
                if d == 1:
                    # Attachment switch of every dst in the group: the only
                    # distance-0 candidate is the destination host itself.
                    for dst in dsts:
                        tbl[dst] = host_name(dst)
                    continue
                target = d - 1
                cands = [sw_names[v] for v in sw_nbrs[si]
                         if dist[v] == target]
                assert cands, "BFS invariant violated"
                n_c = len(cands)
                for dst in dsts:
                    tbl[dst] = cands[dst % n_c]
        return tables

    # ------------------------------------------------------------- multicast

    def mcast_root(self, gid: int, exclude: Optional[Set[str]] = None) -> Optional[str]:
        """Core switch acting as the spanning-tree root for group *gid*.

        With ``exclude``, dead cores are skipped and the root is picked
        from the survivors with the same ``gid``-based rotation — every
        surviving rank computes the same answer from the same dead set.
        """
        cores = self.core_switches
        if exclude:
            cores = [c for c in cores if c not in exclude]
        if not cores:
            return None
        return cores[gid % len(cores)]

    def mcast_tree(
        self,
        gid: int,
        members: Sequence[int],
        exclude: Optional[Set[str]] = None,
    ) -> Dict[str, Set[str]]:
        """Spanning-tree adjacency for a multicast group.

        Returns ``node → set(tree neighbors)`` covering all member hosts.
        Built as the union of deterministic unicast paths root→member, so
        the tree inherits the routing's spine choice determinism.  With
        ``exclude``, the tree avoids the named dead nodes entirely — the
        repair path for a switch-down reroute via a surviving spine.
        """
        members = sorted(set(members))
        if len(members) < 2:
            raise ValueError("a multicast group needs at least 2 members")
        tree: Dict[str, Set[str]] = collections.defaultdict(set)
        root = self.mcast_root(gid, exclude)
        if root is None:
            # Switchless topology (back-to-back): direct host-host edge.
            if len(members) != 2:
                raise ValueError("switchless multicast only supports 2 members")
            a, b = host_name(members[0]), host_name(members[1])
            if b not in self.adjacency[a]:
                raise ValueError("members are not directly connected")
            tree[a].add(b)
            tree[b].add(a)
            return dict(tree)
        # The repair path splices member branches onto whatever root the
        # rotation produced — verify it really is a surviving core before
        # trusting it (a stale/foreign root would silently build a tree
        # the subnet manager could never have programmed).
        if root not in self.core_switches:
            raise TopologyError(
                f"multicast root {root!r} is not a core switch "
                f"(cores: {self.core_switches[:4]}…)")
        if exclude and root in exclude:
            raise TopologyError(
                f"multicast root {root!r} is in the excluded (dead) set")
        # Build a BFS spanning tree from the root (deterministic neighbor
        # order, rotated by gid so distinct groups use distinct links), then
        # keep only the branches leading to members.  A per-destination
        # ECMP walk would not do: different members may pick different
        # equal-cost mid switches, and the union would contain cycles on
        # 3-level fat-trees.
        parent: Dict[str, Optional[str]] = {root: None}
        order = [root]
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            if is_host(node):
                continue  # hosts are tree leaves, never relay points
            neighbors = self.adjacency[node]
            rot = gid % len(neighbors) if neighbors else 0
            for nxt in neighbors[rot:] + neighbors[:rot]:
                if nxt not in parent and not (exclude and nxt in exclude):
                    parent[nxt] = node
                    order.append(nxt)
        for m in members:
            node = host_name(m)
            if node not in parent:
                raise ValueError(f"member h{m} unreachable from {root}")
            while parent[node] is not None:
                up = parent[node]
                tree[node].add(up)
                tree[up].add(node)
                node = up
        return dict(tree)

    # ------------------------------------------------------------ factories

    @classmethod
    def back_to_back(cls) -> "Topology":
        """Two hosts wired NIC-to-NIC (the paper's DPA testbed)."""
        return cls(2, [(host_name(0), host_name(1))], core_switches=[], kind="back_to_back")

    @classmethod
    def star(cls, n_hosts: int) -> "Topology":
        """All hosts on one switch (crossbar)."""
        edges = [(host_name(i), "sw000") for i in range(n_hosts)]
        return cls(n_hosts, edges, kind="star", params={"n_hosts": n_hosts})

    @classmethod
    def leaf_spine(
        cls, n_hosts: int, n_leaf: int, n_spine: int, hosts_per_leaf: Optional[int] = None
    ) -> "Topology":
        """Two-level fat-tree: every leaf connects to every spine.

        Hosts fill leaves sequentially (``hosts_per_leaf`` each, default
        ``ceil(n_hosts / n_leaf)``).
        """
        if hosts_per_leaf is None:
            hosts_per_leaf = -(-n_hosts // n_leaf)
        if n_leaf * hosts_per_leaf < n_hosts:
            raise ValueError("not enough leaf capacity for hosts")
        edges: List[Tuple[str, str]] = []
        leaves = [f"leaf{i:03d}" for i in range(n_leaf)]
        spines = [f"spine{i:03d}" for i in range(n_spine)]
        for i in range(n_hosts):
            edges.append((host_name(i), leaves[i // hosts_per_leaf]))
        for leaf in leaves:
            for spine in spines:
                edges.append((leaf, spine))
        return cls(n_hosts, edges, core_switches=spines, kind="leaf_spine",
                   params={"n_hosts": n_hosts, "n_leaf": n_leaf,
                           "n_spine": n_spine, "hosts_per_leaf": hosts_per_leaf})

    @classmethod
    def testbed_188(cls) -> "Topology":
        """The paper's UCC testbed: 188 hosts, 18 switches (12 leaf + 6
        spine, 16 hosts per leaf — consistent with 36-port SX6036)."""
        return cls.leaf_spine(188, n_leaf=12, n_spine=6, hosts_per_leaf=16)

    @classmethod
    def fat_tree3(
        cls,
        n_hosts: int,
        n_leaf: int,
        n_mid: int,
        n_core: int,
        hosts_per_leaf: Optional[int] = None,
        mid_group: Optional[int] = None,
    ) -> "Topology":
        """Three-level fat-tree (the Fig 2 scale shape, e.g. 1024 nodes on
        radix-32 switches).

        Leaves are partitioned into pods; each pod connects to a group of
        ``mid_group`` middle switches (default: evenly split); every middle
        switch connects to every core switch.  Multicast trees root at the
        core level.
        """
        if hosts_per_leaf is None:
            hosts_per_leaf = -(-n_hosts // n_leaf)
        if n_leaf * hosts_per_leaf < n_hosts:
            raise ValueError("not enough leaf capacity for hosts")
        if mid_group is None:
            mid_group = max(1, n_mid // max(1, n_leaf // 4))
        leaves = [f"leaf{i:03d}" for i in range(n_leaf)]
        mids = [f"mid{i:03d}" for i in range(n_mid)]
        cores = [f"core{i:03d}" for i in range(n_core)]
        edges: List[Tuple[str, str]] = []
        for i in range(n_hosts):
            edges.append((host_name(i), leaves[i // hosts_per_leaf]))
        # Pods: contiguous groups of leaves share a group of mid switches.
        n_groups = max(1, n_mid // mid_group)
        for li, leaf in enumerate(leaves):
            group = (li * n_groups // n_leaf) % n_groups
            for m in range(mid_group):
                edges.append((leaf, mids[(group * mid_group + m) % n_mid]))
        for mid in mids:
            for core in cores:
                edges.append((mid, core))
        return cls(n_hosts, edges, core_switches=cores, kind="fat_tree3",
                   params={"n_hosts": n_hosts, "n_leaf": n_leaf, "n_mid": n_mid,
                           "n_core": n_core, "hosts_per_leaf": hosts_per_leaf,
                           "mid_group": mid_group})

    # ------------------------------------------------- topology zoo families

    @classmethod
    def torus(cls, dims: Sequence[int], hosts_per_node: int = 1) -> "Topology":
        """k-ary n-cube: one router per coordinate, wrap-around rings in
        every dimension, ``hosts_per_node`` hosts hanging off each router.

        Node ids follow the row-major mixed-radix coordinate math of the
        Fugaku bine-tree construction (:func:`torus_coord` /
        :func:`torus_id`): host ``i`` lives on router ``i // hosts_per_node``
        and the last dimension varies fastest.
        """
        dims = [int(d) for d in dims]
        if not dims or any(d < 1 for d in dims):
            raise TopologyError(f"torus dims must be positive, got {dims}")
        if hosts_per_node < 1:
            raise TopologyError("hosts_per_node must be >= 1")
        n_routers = 1
        for d in dims:
            n_routers *= d
        if n_routers < 2:
            raise TopologyError("torus needs at least 2 routers")
        width = max(2, max(len(str(d - 1)) for d in dims))

        def rname(rid: int) -> str:
            coord = torus_coord(rid, dims)
            return "t" + "-".join(f"{c:0{width}d}" for c in coord)

        n_hosts = n_routers * hosts_per_node
        edges: List[Tuple[str, str]] = []
        for i in range(n_hosts):
            edges.append((host_name(i), rname(i // hosts_per_node)))
        for rid in range(n_routers):
            coord = torus_coord(rid, dims)
            for axis, size in enumerate(dims):
                if size == 1:
                    continue
                nxt = list(coord)
                nxt[axis] = (coord[axis] + 1) % size
                edges.append((rname(rid), rname(torus_id(nxt, dims))))
        return cls(n_hosts, edges, kind="torus",
                   params={"dims": dims, "hosts_per_node": hosts_per_node})

    @classmethod
    def dragonfly(cls, n_groups: int, routers_per_group: int,
                  hosts_per_router: int = 1) -> "Topology":
        """Dragonfly: all-to-all router cliques inside each group, one
        global link per group pair.

        The global link for pair ``(a, b)`` lands on router
        ``(b - a - 1) % R`` in group *a* (and symmetrically in *b*), the
        usual round-robin port assignment — every router carries
        ``ceil((G-1)/R)`` global links.
        """
        if n_groups < 1 or routers_per_group < 1 or hosts_per_router < 1:
            raise TopologyError("dragonfly shape parameters must be >= 1")
        if n_groups * routers_per_group < 2:
            raise TopologyError("dragonfly needs at least 2 routers")

        def rname(g: int, r: int) -> str:
            return f"g{g:02d}r{r:02d}"

        n_hosts = n_groups * routers_per_group * hosts_per_router
        edges: List[Tuple[str, str]] = []
        for i in range(n_hosts):
            j = i // hosts_per_router
            edges.append((host_name(i),
                          rname(j // routers_per_group, j % routers_per_group)))
        for g in range(n_groups):
            for r1 in range(routers_per_group):
                for r2 in range(r1 + 1, routers_per_group):
                    edges.append((rname(g, r1), rname(g, r2)))
        for a in range(n_groups):
            for b in range(a + 1, n_groups):
                ra = (b - a - 1) % routers_per_group
                rb = (a - b - 1) % routers_per_group
                edges.append((rname(a, ra), rname(b, rb)))
        return cls(n_hosts, edges, kind="dragonfly",
                   params={"n_groups": n_groups,
                           "routers_per_group": routers_per_group,
                           "hosts_per_router": hosts_per_router})

    @classmethod
    def multi_rail(cls, base: "Topology", n_rails: int) -> "Topology":
        """Wrap *base* into ``n_rails`` parallel planes (Nezha-style).

        Every switch and switch-level link of the base topology is
        replicated once per rail (rail *r*'s copy of switch ``s`` is
        ``s.r{r}``); every host gets one attachment per rail, plugged
        into its base leaf's per-rail copy.  Planes only meet at the
        hosts — the planner stripes multicast groups across them.
        """
        if n_rails < 1:
            raise TopologyError("n_rails must be >= 1")
        if base.rails != 1:
            raise TopologyError("multi_rail wraps a single-rail base topology")
        if not base.switch_names:
            raise TopologyError("multi_rail needs a switched base topology")

        def sname(name: str, rail: int) -> str:
            return f"{name}.r{rail}"

        edges: List[Tuple[str, str]] = []
        edge_rails: Dict[Tuple[str, str], int] = {}
        for r in range(n_rails):
            for a, b in base.edges:
                ra = a if is_host(a) else sname(a, r)
                rb = b if is_host(b) else sname(b, r)
                key = (ra, rb) if ra < rb else (rb, ra)
                edges.append(key)
                edge_rails[key] = r
        cores = [sname(c, r) for r in range(n_rails) for c in base.core_switches]
        return cls(base.n_hosts, edges, core_switches=cores, kind="multi_rail",
                   rails=n_rails, edge_rails=edge_rails,
                   params={"base_kind": base.kind,
                           "base_params": dict(base.params),
                           "n_rails": n_rails})


@dataclass
class TopologySpec:
    """Declarative topology description (handy for experiment configs).

    ``kind``/``params`` round-trip through the tuning cache key for every
    family (see :meth:`key`); :meth:`build` raises a typed
    :class:`TopologyError` — never a bare :class:`KeyError` — on missing
    or invalid parameters.
    """

    kind: str = "star"
    n_hosts: int = 2
    params: Dict[str, object] = field(default_factory=dict)

    KINDS = ("star", "back_to_back", "leaf_spine", "testbed_188",
             "fat_tree3", "torus", "dragonfly", "multi_rail")

    def _param(self, name: str):
        try:
            return self.params[name]
        except KeyError:
            raise TopologyError(
                f"topology kind {self.kind!r} requires param {name!r} "
                f"(got {sorted(self.params)})") from None

    def build(self) -> Topology:
        try:
            return self._build()
        except TopologyError:
            raise
        except (KeyError, TypeError, ValueError) as err:
            raise TopologyError(
                f"invalid params for topology kind {self.kind!r}: {err}") from err

    def _build(self) -> Topology:
        if self.kind == "star":
            return Topology.star(self.n_hosts)
        if self.kind == "back_to_back":
            return Topology.back_to_back()
        if self.kind == "leaf_spine":
            return Topology.leaf_spine(
                self.n_hosts,
                n_leaf=self._param("n_leaf"),
                n_spine=self._param("n_spine"),
                hosts_per_leaf=self.params.get("hosts_per_leaf"),
            )
        if self.kind == "testbed_188":
            return Topology.testbed_188()
        if self.kind == "fat_tree3":
            return Topology.fat_tree3(
                self.n_hosts,
                n_leaf=self._param("n_leaf"),
                n_mid=self._param("n_mid"),
                n_core=self._param("n_core"),
                hosts_per_leaf=self.params.get("hosts_per_leaf"),
                mid_group=self.params.get("mid_group"),
            )
        if self.kind == "torus":
            topo = Topology.torus(
                self._param("dims"),
                hosts_per_node=int(self.params.get("hosts_per_node", 1)),
            )
            if topo.n_hosts != self.n_hosts:
                raise TopologyError(
                    f"torus dims {self.params.get('dims')} give "
                    f"{topo.n_hosts} hosts, spec says {self.n_hosts}")
            return topo
        if self.kind == "dragonfly":
            topo = Topology.dragonfly(
                self._param("n_groups"),
                self._param("routers_per_group"),
                hosts_per_router=int(self.params.get("hosts_per_router", 1)),
            )
            if topo.n_hosts != self.n_hosts:
                raise TopologyError(
                    f"dragonfly shape gives {topo.n_hosts} hosts, "
                    f"spec says {self.n_hosts}")
            return topo
        if self.kind == "multi_rail":
            base = TopologySpec(
                kind=str(self._param("base_kind")),
                n_hosts=self.n_hosts,
                params=dict(self.params.get("base_params", {})),
            ).build()
            return Topology.multi_rail(base, int(self._param("n_rails")))
        raise TopologyError(f"unknown topology kind {self.kind!r}")

    def key(self) -> Dict[str, object]:
        """Canonical JSON-safe form for tuning cache keys: the family and
        its parameters, lists normalized so digests are order-stable.

        Parameters canonicalize *through the factory*: the spec is built
        and the constructed topology's fully-defaulted ``params`` are
        emitted, so equivalent spellings (``hosts_per_leaf`` omitted vs
        explicit, dims as tuple vs list) share one digest — and malformed
        params fail here, at key time, as a :class:`TopologyError`.
        """
        def norm(v):
            if isinstance(v, dict):
                return {str(k): norm(x) for k, x in sorted(v.items())}
            if isinstance(v, (list, tuple)):
                return [norm(x) for x in v]
            return v
        params = self.params
        if params or self.kind in ("torus", "dragonfly", "multi_rail"):
            params = dict(self.build().params)
        return {"kind": self.kind, "n_hosts": self.n_hosts,
                "params": norm(params)}
