"""Time-varying fabric pathologies for the chaos harness.

Static per-link Bernoulli drops (the original :class:`~repro.net.link.FaultSpec`
knobs) miss exactly the regimes where the reliability slow path earns its
keep: *bursty* loss, whole-link outages, and receivers that momentarily
cannot keep up.  This module adds the time-varying fault vocabulary:

* :class:`GilbertElliott` — the classic two-state Markov burst-loss model.
  A channel is in a *good* or *bad* state; each droppable packet first
  steps the chain, then is dropped with the state's loss probability.
  Burstiness (correlated loss) comes from a sticky bad state.
* :class:`Window` — a half-open ``[start, end)`` interval of virtual time.
  Used for link flaps (full outage: every affected packet in the window is
  lost) and degraded-bandwidth periods (the channel serializes at
  ``factor × bandwidth`` inside the window).
* :class:`StragglerSpec` — a host-side pathology: inside its windows, the
  rank's progress engine pays ``extra_poll_delay`` per CQE poll, modeling a
  slow receiver (CPU contention, thermal throttling) whose staging ring
  backs up into RNR drops.
* :class:`CrashSpec` — a *fail-stop* fault: a host/NIC death, hard
  switch-down, or hard link-down at a virtual time.  Unlike the transient
  pathologies above, a crash is permanent — the element never comes back —
  and is repaired by the communicator's membership/re-plan machinery, not
  by the packet-level slow path.

All specs validate at construction so misconfiguration fails loudly at the
call site instead of misbehaving packets-deep inside the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "GilbertElliott",
    "Window",
    "StragglerSpec",
    "CrashSpec",
    "normalize_windows",
    "windows_inert_after",
]


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {p}")


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov (bursty) loss model.

    Attributes
    ----------
    p_good_bad:
        Per-packet transition probability good → bad.
    p_bad_good:
        Per-packet transition probability bad → good; its reciprocal is the
        mean burst length in packets.
    drop_good:
        Loss probability while in the good state (usually ~0).
    drop_bad:
        Loss probability while in the bad state.
    start_bad:
        Initial channel state.
    """

    p_good_bad: float
    p_bad_good: float
    drop_good: float = 0.0
    drop_bad: float = 0.75
    start_bad: bool = False

    def __post_init__(self) -> None:
        _check_prob("p_good_bad", self.p_good_bad)
        _check_prob("p_bad_good", self.p_bad_good)
        _check_prob("drop_good", self.drop_good)
        _check_prob("drop_bad", self.drop_bad)

    @property
    def mean_burst_packets(self) -> float:
        """Expected dwell time in the bad state, in packets."""
        return 1.0 / self.p_bad_good if self.p_bad_good > 0 else float("inf")

    def expected_loss_rate(self) -> float:
        """Stationary packet-loss probability of the chain."""
        p, r = self.p_good_bad, self.p_bad_good
        if p + r == 0:
            pi_bad = 1.0 if self.start_bad else 0.0
        else:
            pi_bad = p / (p + r)
        return pi_bad * self.drop_bad + (1.0 - pi_bad) * self.drop_good


@dataclass(frozen=True)
class Window:
    """A half-open ``[start, end)`` interval of virtual time (seconds).

    ``factor`` only matters for degraded-bandwidth windows: the channel
    runs at ``factor × nominal bandwidth`` inside the window.
    """

    start: float
    end: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(
                f"window end {self.end} precedes its start {self.start}"
            )
        if self.factor <= 0:
            raise ValueError(f"window factor must be > 0, got {self.factor}")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def normalize_windows(windows: Iterable) -> Tuple[Window, ...]:
    """Coerce ``(start, end)`` / ``(start, end, factor)`` tuples into
    validated :class:`Window` objects (passing Windows through).

    Windows are returned sorted by start time.  Zero-length windows
    (``end == start``) and overlapping pairs are rejected with a
    :class:`ValueError` naming the offending window(s): overlap semantics
    would otherwise be silently order-dependent (which window's ``factor``
    wins inside the intersection depends on iteration order).
    """
    out = []
    for w in windows:
        if isinstance(w, Window):
            out.append(w)
        else:
            out.append(Window(*w))
    for w in out:
        if w.end == w.start:
            raise ValueError(
                f"zero-length window [{w.start}, {w.end}) matches no instant; "
                "drop it or give it a positive duration"
            )
    out.sort(key=lambda w: (w.start, w.end))
    for a, b in zip(out, out[1:]):
        if b.start < a.end:
            raise ValueError(
                f"windows [{a.start}, {a.end}) and [{b.start}, {b.end}) "
                "overlap; merge them or make them disjoint"
            )
    return tuple(out)


def windows_inert_after(windows: Iterable[Window], t: float) -> bool:
    """True when every window has fully elapsed by virtual time ``t`` —
    no sample at or after ``t`` can land inside one, so a timing model
    (train coalescing, flow-level fast-forward) that evaluates the whole
    future transfer at nominal rates is exact."""
    return all(w.end <= t for w in windows)


@dataclass(frozen=True)
class StragglerSpec:
    """A slow-receiver injection for one host.

    Inside each window the host's receive workers pay ``extra_poll_delay``
    additional seconds per CQE poll — the progress engine falls behind the
    wire and the staging ring backpressure turns into RNR drops, which the
    reliability layer must then absorb.
    """

    windows: Sequence
    extra_poll_delay: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", normalize_windows(self.windows))
        if self.extra_poll_delay < 0:
            raise ValueError(
                f"extra_poll_delay must be >= 0, got {self.extra_poll_delay}"
            )

    def delay_at(self, t: float) -> float:
        for w in self.windows:
            if w.contains(t):
                return self.extra_poll_delay
        return 0.0

    def inert_over(self, t0: float, t1: float) -> bool:
        """True when no window overlaps ``[t0, t1]`` — every
        :meth:`delay_at` sample inside the interval returns 0, so a
        batched replay of per-CQE polls over the interval is exact."""
        if self.extra_poll_delay == 0.0:
            return True
        for w in self.windows:
            if w.start <= t1 and w.end > t0:
                return False
        return True


@dataclass(frozen=True)
class CrashSpec:
    """A permanent fail-stop fault injected at virtual time ``at``.

    Exactly one of the three targets must be set:

    * ``host`` — the named host's NIC dies: it stops transmitting and
      receiving (including loopback), and the rank's progress engine is
      terminated.  Models a host crash or NIC death.
    * ``switch`` — the named switch goes dark: every packet arriving at or
      forwarded by it is dropped.  Survivor traffic must reroute via a
      surviving spine.
    * ``link`` — a ``(end_a, end_b)`` node-name pair; both directions of
      the channel between them go down permanently.

    Crashes compose with the transient chaos schedules (drops, flaps,
    stragglers): the chaos layer keeps perturbing the surviving elements
    while the crash removes one permanently.
    """

    at: float
    host: Optional[str] = None
    switch: Optional[str] = None
    link: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")
        targets = [t for t in (self.host, self.switch, self.link) if t is not None]
        if len(targets) != 1:
            raise ValueError(
                "CrashSpec needs exactly one of host=, switch=, link=, "
                f"got {len(targets)} targets"
            )
        if self.link is not None:
            pair = tuple(self.link)
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ValueError(
                    f"link crash needs two distinct endpoint names, got {self.link!r}"
                )
            object.__setattr__(self, "link", pair)

    @property
    def target(self) -> str:
        """Human-readable name of the element that dies."""
        if self.host is not None:
            return self.host
        if self.switch is not None:
            return self.switch
        return "%s<->%s" % self.link  # type: ignore[str-format]
