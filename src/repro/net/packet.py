"""Packets on the simulated wire.

A :class:`Packet` is the unit the link/switch layer moves around.  Payloads
are **zero-copy views** into the sender's registered memory (numpy slices);
the receive path copies out of the view on delivery, mirroring how real
RDMA hardware DMA-reads the source buffer at transmit time.

Packet sizes on the wire include a configurable per-packet header overhead
(IB LRH+GRH+BTH+ICRC etc.); traffic counters can report either wire bytes
or payload bytes.

:class:`Packet` is a hand-written ``__slots__`` class rather than a
dataclass: packet construction and fan-out cloning are the hottest
allocation sites in the simulator, and slotted instances are both smaller
and faster to create (``dataclass(slots=True)`` needs Python ≥3.10; the CI
matrix includes 3.9).

:class:`PacketTrain` is the fast-path unit: a back-to-back run of packets
of one flow that a fault-free channel serialized with a single event (see
:meth:`repro.net.link.Channel.transmit_train`).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = ["PacketKind", "Packet", "PacketTrain", "MCAST_FLAG"]

#: Destination ids at or above this value denote multicast group ids
#: (``MCAST_FLAG + gid``), mirroring the IB multicast LID range.
MCAST_FLAG = 1 << 24

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """What the packet carries, i.e. which receive path handles it."""

    UD_SEND = "ud_send"  #: datagram with immediate data (multicastable)
    UC_WRITE = "uc_write"  #: segment of an RDMA write (multicastable ext.)
    RC_SEND = "rc_send"  #: reliable two-sided send
    RC_WRITE = "rc_write"  #: segment of a reliable one-sided write
    RC_READ_REQ = "rc_read_req"  #: read request (header-only)
    RC_READ_RESP = "rc_read_resp"  #: segment of a read response
    INC_REDUCE = "inc_reduce"  #: in-network-compute contribution (SHARP-like)
    CONTROL = "control"  #: protocol-internal control datagram


class Packet:
    """One wire packet.

    Attributes
    ----------
    src:
        Sender host id.
    dst:
        Destination host id, or ``MCAST_FLAG + gid`` for multicast.
    kind:
        The :class:`PacketKind`.
    payload:
        Zero-copy ``numpy`` view of the payload bytes (may be ``None`` for
        header-only packets such as read requests).
    payload_len:
        Length in bytes of the payload (kept explicitly so header-only
        packets can still declare a logical length, e.g. read requests).
    header_bytes:
        Per-packet header overhead added to the wire size.
    imm:
        32-bit immediate value (the Broadcast protocol stores the PSN here).
    qpn:
        Destination queue-pair number (ignored for multicast, where the
        group id selects attached QPs).
    src_qpn:
        Sender queue-pair number (reported in receive CQEs, UD-style).
    msg_id / msg_seq / msg_segments:
        Multi-packet message bookkeeping (UC/RC writes, read responses):
        which message this segment belongs to, its index, and the total
        segment count.
    ctx:
        Free-form per-packet context used by NIC internals (e.g. remote
        address of a write segment).
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "payload",
        "payload_len",
        "header_bytes",
        "imm",
        "qpn",
        "src_qpn",
        "msg_id",
        "msg_seq",
        "msg_segments",
        "ctx",
        "pkt_id",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: PacketKind,
        payload: Optional[np.ndarray] = None,
        payload_len: int = 0,
        header_bytes: int = 64,
        imm: Optional[int] = None,
        qpn: Optional[int] = None,
        src_qpn: Optional[int] = None,
        msg_id: Optional[int] = None,
        msg_seq: int = 0,
        msg_segments: int = 1,
        ctx: Optional[dict] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        if payload is not None and payload_len == 0:
            payload_len = int(payload.nbytes)
        self.payload_len = payload_len
        self.header_bytes = header_bytes
        self.imm = imm
        self.qpn = qpn
        self.src_qpn = src_qpn
        self.msg_id = msg_id
        self.msg_seq = msg_seq
        self.msg_segments = msg_segments
        self.ctx: dict = ctx if ctx is not None else {}
        self.pkt_id = next(_packet_ids)

    # ------------------------------------------------------------------ size

    @property
    def wire_bytes(self) -> int:
        """Bytes occupied on the wire (payload + header overhead)."""
        return self.payload_len + self.header_bytes

    @property
    def is_multicast(self) -> bool:
        return self.dst >= MCAST_FLAG

    @property
    def mcast_gid(self) -> int:
        """Multicast group id (only valid when :attr:`is_multicast`)."""
        if not self.is_multicast:
            raise ValueError("not a multicast packet")
        return self.dst - MCAST_FLAG

    def clone_for_fanout(self) -> "Packet":
        """A shallow copy used when a switch replicates a multicast packet.

        The payload view is shared — replication does not copy data, just
        as a real switch replicates frames out of its shared buffer.  The
        ``ctx`` dict is **copied**: it is mutable per-delivery protocol
        state, and sharing one dict across fanout clones would let one
        receiver's NIC observe another's mutations.
        """
        ctx = self.ctx
        return Packet(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=self.payload,
            payload_len=self.payload_len,
            header_bytes=self.header_bytes,
            imm=self.imm,
            qpn=self.qpn,
            src_qpn=self.src_qpn,
            msg_id=self.msg_id,
            msg_seq=self.msg_seq,
            msg_segments=self.msg_segments,
            ctx=dict(ctx) if ctx else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = f"mcast:{self.mcast_gid}" if self.is_multicast else str(self.dst)
        return (
            f"<Packet #{self.pkt_id} {self.kind.value} {self.src}->{dst} "
            f"len={self.payload_len} imm={self.imm}>"
        )


class PacketTrain:
    """A back-to-back run of same-flow packets moved as one queue event.

    ``arrivals[i]`` is the exact per-packet delivery instant the per-packet
    slow path would have produced; receivers replay them via a chained
    delivery (one pending event per train, never one per packet), so CQE
    timestamps and RNR decisions are identical to per-packet simulation.
    ``next_idx`` is the receiver-side replay cursor.
    """

    __slots__ = ("packets", "arrivals", "next_idx")

    def __init__(self, packets: List[Packet], arrivals: Sequence[float]) -> None:
        self.packets = packets
        self.arrivals = arrivals
        self.next_idx = 0

    def __len__(self) -> int:
        return len(self.packets)

    def clone_for_fanout(self) -> "PacketTrain":
        """Replicate for one multicast egress; arrival times are shared
        (read-only), packet clones share payload views."""
        return PacketTrain(
            [p.clone_for_fanout() for p in self.packets], self.arrivals
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PacketTrain n={len(self.packets)} t0={self.arrivals[0]:.9f}>"


def mcast_dst(gid: int) -> int:
    """Encode multicast group *gid* as a packet destination id."""
    if gid < 0:
        raise ValueError("group id must be non-negative")
    return MCAST_FLAG + gid
