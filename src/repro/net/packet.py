"""Packets on the simulated wire.

A :class:`Packet` is the unit the link/switch layer moves around.  Payloads
are **zero-copy views** into the sender's registered memory (numpy slices);
the receive path copies out of the view on delivery, mirroring how real
RDMA hardware DMA-reads the source buffer at transmit time.

Packet sizes on the wire include a configurable per-packet header overhead
(IB LRH+GRH+BTH+ICRC etc.); traffic counters can report either wire bytes
or payload bytes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["PacketKind", "Packet", "MCAST_FLAG"]

#: Destination ids at or above this value denote multicast group ids
#: (``MCAST_FLAG + gid``), mirroring the IB multicast LID range.
MCAST_FLAG = 1 << 24

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """What the packet carries, i.e. which receive path handles it."""

    UD_SEND = "ud_send"  #: datagram with immediate data (multicastable)
    UC_WRITE = "uc_write"  #: segment of an RDMA write (multicastable ext.)
    RC_SEND = "rc_send"  #: reliable two-sided send
    RC_WRITE = "rc_write"  #: segment of a reliable one-sided write
    RC_READ_REQ = "rc_read_req"  #: read request (header-only)
    RC_READ_RESP = "rc_read_resp"  #: segment of a read response
    INC_REDUCE = "inc_reduce"  #: in-network-compute contribution (SHARP-like)
    CONTROL = "control"  #: protocol-internal control datagram


@dataclass
class Packet:
    """One wire packet.

    Attributes
    ----------
    src:
        Sender host id.
    dst:
        Destination host id, or ``MCAST_FLAG + gid`` for multicast.
    kind:
        The :class:`PacketKind`.
    payload:
        Zero-copy ``numpy`` view of the payload bytes (may be ``None`` for
        header-only packets such as read requests).
    payload_len:
        Length in bytes of the payload (kept explicitly so header-only
        packets can still declare a logical length, e.g. read requests).
    header_bytes:
        Per-packet header overhead added to the wire size.
    imm:
        32-bit immediate value (the Broadcast protocol stores the PSN here).
    qpn:
        Destination queue-pair number (ignored for multicast, where the
        group id selects attached QPs).
    src_qpn:
        Sender queue-pair number (reported in receive CQEs, UD-style).
    msg_id / msg_seq / msg_segments:
        Multi-packet message bookkeeping (UC/RC writes, read responses):
        which message this segment belongs to, its index, and the total
        segment count.
    ctx:
        Free-form per-packet context used by NIC internals (e.g. remote
        address of a write segment).
    """

    src: int
    dst: int
    kind: PacketKind
    payload: Optional[np.ndarray] = None
    payload_len: int = 0
    header_bytes: int = 64
    imm: Optional[int] = None
    qpn: Optional[int] = None
    src_qpn: Optional[int] = None
    msg_id: Optional[int] = None
    msg_seq: int = 0
    msg_segments: int = 1
    ctx: dict = field(default_factory=dict)
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.payload is not None and self.payload_len == 0:
            self.payload_len = int(self.payload.nbytes)

    # ------------------------------------------------------------------ size

    @property
    def wire_bytes(self) -> int:
        """Bytes occupied on the wire (payload + header overhead)."""
        return self.payload_len + self.header_bytes

    @property
    def is_multicast(self) -> bool:
        return self.dst >= MCAST_FLAG

    @property
    def mcast_gid(self) -> int:
        """Multicast group id (only valid when :attr:`is_multicast`)."""
        if not self.is_multicast:
            raise ValueError("not a multicast packet")
        return self.dst - MCAST_FLAG

    def clone_for_fanout(self) -> "Packet":
        """A shallow copy used when a switch replicates a multicast packet.

        The payload view is shared — replication does not copy data, just
        as a real switch replicates frames out of its shared buffer.
        """
        return Packet(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=self.payload,
            payload_len=self.payload_len,
            header_bytes=self.header_bytes,
            imm=self.imm,
            qpn=self.qpn,
            src_qpn=self.src_qpn,
            msg_id=self.msg_id,
            msg_seq=self.msg_seq,
            msg_segments=self.msg_segments,
            ctx=self.ctx,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = f"mcast:{self.mcast_gid}" if self.is_multicast else str(self.dst)
        return (
            f"<Packet #{self.pkt_id} {self.kind.value} {self.src}->{dst} "
            f"len={self.payload_len} imm={self.imm}>"
        )


def mcast_dst(gid: int) -> int:
    """Encode multicast group *gid* as a packet destination id."""
    if gid < 0:
        raise ValueError("group id must be non-negative")
    return MCAST_FLAG + gid
