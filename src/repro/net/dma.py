"""Host-local DMA engine model.

The receiver datapath of the UD Broadcast protocol copies every chunk from
the staging ring into the user buffer (paper §III-B, step 4).  The copy is
issued to a non-blocking DMA queue so that network receives overlap with
staging-to-user movement; the paper quotes 1–3 µs PCIe latency per copy.

:class:`DmaEngine` models exactly that: a FIFO engine with finite bandwidth
and a fixed per-op latency.  ``copy()`` returns an event that fires when
the bytes have landed; the data is physically moved at completion time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.events import Event
from repro.units import US, gib_per_s

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["DmaEngine"]


def _place_and_call(src: np.ndarray, dst: np.ndarray, cb, *args) -> None:
    """First completion of a coalesced run: land the whole span, then run
    the first slot's bookkeeping (span placement precedes any ``placed``
    bit of the run, so remote readers never see stale bytes)."""
    dst[:] = src
    cb(*args)


class DmaEngine:
    """A non-blocking copy engine with bandwidth and latency.

    Parameters
    ----------
    sim:
        The simulator.
    bandwidth:
        Sustained copy bandwidth, bytes/second (PCIe 4.0 x16 ≈ 25 GiB/s).
    latency:
        Fixed queuing/doorbell/PCIe latency added to every operation.
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth: float = gib_per_s(25),
        latency: float = 2.0 * US,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.busy_until = 0.0
        self.bytes_copied = 0
        self.ops = 0

    def copy(self, src: np.ndarray, dst: np.ndarray) -> Event:
        """Queue a copy of ``src`` into ``dst``; event fires at completion.

        The source view is captured by reference and read at completion
        time, mirroring descriptor-based DMA; callers must not recycle the
        source (staging slot) until the event fires.
        """
        if src.nbytes != dst.nbytes:
            raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
        n = int(src.nbytes)
        now = self.sim.now
        start = now if now > self.busy_until else self.busy_until
        finish = start + n / self.bandwidth
        self.busy_until = finish
        self.bytes_copied += n
        self.ops += 1
        done = Event(self.sim)

        def _complete() -> None:
            dst[:] = src
            done.succeed()

        self.sim.post_at(finish + self.latency, _complete)
        return done

    def copy_runs(self, segments) -> float:
        """Scatter-gather batch: queue many copies with pre-computed issue
        instants, coalescing the data movement of adjacent slots.

        ``segments`` is a sequence of ``(src, dst, ops)`` where ``src`` /
        ``dst`` are spanning views over a run of adjacent staging slots /
        user-buffer chunks, and ``ops`` is a list of per-slot
        ``(nbytes, issue_time, callback, args)`` tuples in issue order
        (issue times non-decreasing across the whole call).  ``callback``
        is invoked as ``callback(*args)`` — passing a bound method plus an
        args tuple avoids a closure allocation per op on the hot path.

        Virtual-time behaviour is **bit-identical** to calling
        :meth:`copy` once per op at its ``issue_time``: the engine chain
        (``start = max(issue, busy_until)``, ``finish = start + n/bw``)
        replays the exact float sequence, and each op's ``callback`` runs
        at its own ``finish + latency`` instant.  Only the data movement
        is coalesced: a segment's whole span is placed at the segment's
        *first* completion — early, never late, which is safe because
        readers gate on per-chunk ``placed`` bits that the callbacks set
        at the exact per-op instants.

        Returns the completion instant of the last op.
        """
        bw = self.bandwidth
        lat = self.latency
        busy = self.busy_until
        post = self.sim.post_at
        n_ops = 0
        total = 0
        for src, dst, ops in segments:
            if src.nbytes != dst.nbytes:
                raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
            first = True
            for nbytes, when, cb, args in ops:
                start = when if when > busy else busy
                busy = start + nbytes / bw
                total += nbytes
                n_ops += 1
                if first:
                    post(busy + lat, _place_and_call, src, dst, cb, *args)
                    first = False
                else:
                    post(busy + lat, cb, *args)
        self.busy_until = busy
        self.bytes_copied += total
        self.ops += n_ops
        return busy + lat

    @property
    def queue_depth_time(self) -> float:
        """Seconds of work currently queued ahead of a new op."""
        return max(0.0, self.busy_until - self.sim.now)
