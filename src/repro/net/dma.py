"""Host-local DMA engine model.

The receiver datapath of the UD Broadcast protocol copies every chunk from
the staging ring into the user buffer (paper §III-B, step 4).  The copy is
issued to a non-blocking DMA queue so that network receives overlap with
staging-to-user movement; the paper quotes 1–3 µs PCIe latency per copy.

:class:`DmaEngine` models exactly that: a FIFO engine with finite bandwidth
and a fixed per-op latency.  ``copy()`` returns an event that fires when
the bytes have landed; the data is physically moved at completion time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.events import Event
from repro.units import US, gib_per_s

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["DmaEngine"]


class DmaEngine:
    """A non-blocking copy engine with bandwidth and latency.

    Parameters
    ----------
    sim:
        The simulator.
    bandwidth:
        Sustained copy bandwidth, bytes/second (PCIe 4.0 x16 ≈ 25 GiB/s).
    latency:
        Fixed queuing/doorbell/PCIe latency added to every operation.
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth: float = gib_per_s(25),
        latency: float = 2.0 * US,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.busy_until = 0.0
        self.bytes_copied = 0
        self.ops = 0

    def copy(self, src: np.ndarray, dst: np.ndarray) -> Event:
        """Queue a copy of ``src`` into ``dst``; event fires at completion.

        The source view is captured by reference and read at completion
        time, mirroring descriptor-based DMA; callers must not recycle the
        source (staging slot) until the event fires.
        """
        if src.nbytes != dst.nbytes:
            raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
        n = int(src.nbytes)
        now = self.sim.now
        start = now if now > self.busy_until else self.busy_until
        finish = start + n / self.bandwidth
        self.busy_until = finish
        self.bytes_copied += n
        self.ops += 1
        done = Event(self.sim)

        def _complete() -> None:
            dst[:] = src
            done.succeed()

        self.sim.post_at(finish + self.latency, _complete)
        return done

    @property
    def queue_depth_time(self) -> float:
        """Seconds of work currently queued ahead of a new op."""
        return max(0.0, self.busy_until - self.sim.now)
