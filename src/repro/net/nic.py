"""Host NIC model: queue pairs, completion queues, send engine, receive path.

The API intentionally mirrors InfiniBand Verbs so that the protocol code in
:mod:`repro.core` reads like its C original:

* :meth:`Nic.create_qp` → ``ibv_create_qp`` (UD / UC / RC service models)
* :meth:`QueuePair.post_recv` / :meth:`QueuePair.post_send`
* :meth:`CompletionQueue.poll` / :meth:`CompletionQueue.wait`
* :meth:`QueuePair.attach_mcast` → ``ibv_attach_mcast``

Transport semantics implemented (paper §II-B):

UD
    Datagrams ≤ MTU, connection-less, unreliable, multicast-capable.  A
    datagram arriving with an empty receive queue is an **RNR drop**
    (counted).  Payload lands in the posted receive buffer; the CQE carries
    the 32-bit immediate (the protocol's PSN).
UC
    Connected, unreliable, arbitrary-length RDMA WRITE (+immediate).  We
    also model the paper's hypothesized *multicast UC write* extension.
    Segments place data directly at the remote address; a message whose
    segments do not all arrive never completes (no CQE) — partial data may
    have been placed, which is exactly why the receiver must track
    completion per chunk.
RC
    Connected, reliable (immune to fault injection): two-sided SEND,
    one-sided WRITE and READ.  Sender completions respect acknowledgement
    timing; READ responses consume the *target's* egress bandwidth.
"""

from __future__ import annotations

import collections
import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.net.link import Channel
from repro.net.memory import Memory
from repro.net.packet import MCAST_FLAG, Packet, PacketKind, PacketTrain
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric import Fabric
    from repro.sim.engine import Simulator

__all__ = [
    "Transport",
    "Opcode",
    "SendWR",
    "RecvWR",
    "CQE",
    "CompletionQueue",
    "QueuePair",
    "Nic",
]


class Transport(enum.Enum):
    UD = "ud"
    UC = "uc"
    RC = "rc"


class Opcode(enum.Enum):
    SEND = "send"  #: tx completion of a SEND
    RDMA_WRITE = "rdma_write"  #: tx completion of a WRITE
    RDMA_READ = "rdma_read"  #: tx completion of a READ (data placed locally)
    RECV = "recv"  #: rx completion of a SEND
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"  #: rx completion of WRITE+imm


@dataclass
class SendWR:
    """A send-side work request (single SGE).

    ``verb`` selects SEND / WRITE / READ.  For UD, ``dst``+``dst_qpn`` or
    ``mcast_gid`` routes the datagram.  WRITE/READ address remote memory as
    ``(remote_key, remote_offset)``.
    """

    wr_id: int
    verb: str  # 'send' | 'write' | 'read'
    mr_key: int = 0
    offset: int = 0
    length: int = 0
    #: Inline payload (IB inline send): the data is captured by copy at
    #: post time and needs no memory registration.  Mutually exclusive
    #: with ``mr_key``/``offset``/``length``.
    inline_data: Optional[object] = None
    imm: Optional[int] = None
    dst: Optional[int] = None
    dst_qpn: Optional[int] = None
    mcast_gid: Optional[int] = None
    remote_key: Optional[int] = None
    remote_offset: int = 0
    signaled: bool = True


@dataclass
class RecvWR:
    """A receive-side work request: where an inbound message may land."""

    wr_id: int
    mr_key: int
    offset: int
    length: int


@dataclass
class CQE:
    """Completion queue entry."""

    wr_id: int
    opcode: Opcode
    qpn: int
    byte_len: int = 0
    imm: Optional[int] = None
    src: Optional[int] = None
    src_qpn: Optional[int] = None
    ok: bool = True
    timestamp: float = 0.0


class CompletionQueue:
    """A FIFO of CQEs with an event-channel style waitable."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.items: Deque[CQE] = collections.deque()
        self._waiters: Deque[Event] = collections.deque()
        self.total_pushed = 0
        #: one-shot batch-notify callback (see :meth:`set_notify`)
        self.notify_cb = None

    def push(self, cqe: CQE) -> None:
        self.push_at(cqe, self.sim.now)

    def push_at(self, cqe: CQE, t: float) -> None:
        """Push a CQE stamped with an explicit completion instant *t*.

        Batched train delivery pushes a whole train's CQEs in one event at
        the first arrival, each stamped with its true per-packet arrival;
        the consumer anchors its per-CQE processing at
        ``max(previous end, cqe.timestamp)``, which reproduces per-packet
        delivery timing exactly.
        """
        cqe.timestamp = t
        self.items.append(cqe)
        self.total_pushed += 1
        cb = self.notify_cb
        if cb is not None:
            self.notify_cb = None
            cb()
        while self._waiters:
            self._waiters.popleft().succeed()

    def set_notify(self, fn) -> None:
        """Arm a one-shot callback invoked synchronously on the next push.

        The lightweight sibling of :meth:`wait` for the hot receive edge:
        no Event allocation, no subscription churn — the consumer (a
        passively-parked receive worker) re-arms before each park.  The
        callback is disarmed before it runs, so it may poll and re-arm.
        Callers arm only when the queue is empty; a callback armed on a
        non-empty queue fires on the *next* push, not immediately.
        """
        self.notify_cb = fn

    def poll(self, max_entries: Optional[int] = None) -> List[CQE]:
        """Drain up to ``max_entries`` completions (non-blocking)."""
        n = len(self.items) if max_entries is None else min(max_entries, len(self.items))
        return [self.items.popleft() for _ in range(n)]

    def wait(self) -> Event:
        """Event that fires when the CQ is (or becomes) non-empty."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class QueuePair:
    """A simulated queue pair."""

    def __init__(
        self,
        nic: "Nic",
        qpn: int,
        transport: Transport,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_recv_wr: int = 8192,
    ) -> None:
        self.nic = nic
        self.qpn = qpn
        self.transport = transport
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_recv_wr = max_recv_wr
        self.recv_queue: Deque[RecvWR] = collections.deque()
        self.peer: Optional[Tuple[int, int]] = None  # (host, qpn)
        self.mcast_groups: Set[int] = set()
        self.rnr_drops = 0
        #: opt-in to batched train delivery (one event per train instead of
        #: per-packet replay).  Only the progress engine sets this, and only
        #: for QPs whose receive worker drains exactly this one QP — a
        #: multi-QP worker must observe cross-QP arrival interleaving, which
        #: batched delivery would reorder.
        self.batch_delivery = False

    # ----------------------------------------------------------- connection

    def connect(self, remote_host: int, remote_qpn: int) -> None:
        """Connect a UC/RC QP to its remote counterpart."""
        if self.transport is Transport.UD:
            raise ValueError("UD QPs are connection-less")
        self.peer = (remote_host, remote_qpn)

    def attach_mcast(self, gid: int) -> None:
        """Attach this QP to a multicast group (UD, or UC for the
        hypothetical multicast-write extension)."""
        if self.transport is Transport.RC:
            raise ValueError("RC transport does not support multicast")
        self.nic.attach_mcast(gid, self.qpn)
        self.mcast_groups.add(gid)

    def detach_mcast(self, gid: int) -> None:
        self.nic.detach_mcast(gid, self.qpn)
        self.mcast_groups.discard(gid)

    # ------------------------------------------------------------- posting

    def post_recv(self, wr: RecvWR) -> None:
        if len(self.recv_queue) >= self.max_recv_wr:
            raise RuntimeError(f"QP {self.qpn}: receive queue full ({self.max_recv_wr})")
        self.nic.memory.lookup(wr.mr_key).check(wr.offset, wr.length)  # validate
        self.recv_queue.append(wr)
        self.nic._drain_rc_pending(self)

    def post_recv_cached(self, wr: RecvWR) -> None:
        """Re-post a cached, previously validated WR (paper §V-A "fast
        re-posting"): identical to :meth:`post_recv` minus the MR
        validation, which already ran when the WR was first posted."""
        if len(self.recv_queue) >= self.max_recv_wr:
            raise RuntimeError(f"QP {self.qpn}: receive queue full ({self.max_recv_wr})")
        self.recv_queue.append(wr)
        self.nic._drain_rc_pending(self)

    def post_recv_batch(self, wrs: List[RecvWR]) -> None:
        """Post many receive WRs at one instant (bulk repost / ring prime).

        Equivalent to ``post_recv`` per WR — same validation, same parked
        RC completions drained — with one capacity check up front and a
        single queue extension.
        """
        if len(self.recv_queue) + len(wrs) > self.max_recv_wr:
            raise RuntimeError(
                f"QP {self.qpn}: posting {len(wrs)} WRs overflows receive "
                f"queue ({len(self.recv_queue)}/{self.max_recv_wr})"
            )
        lookup = self.nic.memory.lookup
        for wr in wrs:
            lookup(wr.mr_key).check(wr.offset, wr.length)  # validate
        self.recv_queue.extend(wrs)
        for _ in wrs:
            self.nic._drain_rc_pending(self)

    def post_send(self, wr: SendWR) -> None:
        self._validate_send(wr)
        self.nic._execute_send(self, wr)

    def _validate_send(self, wr: SendWR) -> None:
        t = self.transport
        if wr.verb not in ("send", "write", "read"):
            raise ValueError(f"unknown verb {wr.verb!r}")
        if t is Transport.UD:
            if wr.verb != "send":
                raise ValueError("UD supports two-sided SEND only")
            if wr.length > self.nic.mtu:
                raise ValueError(
                    f"UD datagram of {wr.length} B exceeds MTU {self.nic.mtu}"
                )
            if wr.mcast_gid is None and (wr.dst is None or wr.dst_qpn is None):
                raise ValueError("UD send needs dst+dst_qpn or mcast_gid")
        elif t is Transport.UC:
            if wr.verb == "read":
                raise ValueError("UC does not support RDMA READ")
            if wr.verb == "write" and wr.remote_key is None:
                raise ValueError("write needs remote_key")
            if wr.mcast_gid is None and self.peer is None:
                raise ValueError("UC QP not connected")
        else:  # RC
            if wr.mcast_gid is not None:
                raise ValueError("RC transport does not support multicast")
            if self.peer is None:
                raise ValueError("RC QP not connected")
            if wr.verb in ("write", "read") and wr.remote_key is None:
                raise ValueError(f"{wr.verb} needs remote_key")
        if wr.inline_data is not None:
            if wr.verb != "send":
                raise ValueError("inline data is only supported for SEND")
            return
        if wr.verb != "read" and wr.length > 0:
            self.nic.memory.lookup(wr.mr_key).check(wr.offset, wr.length)  # validate


class _Reassembly:
    """Tracks arrival of a multi-segment message on the receive side.

    ``imm`` caches the immediate value seen on whichever segment carried
    it — under adaptive-routing reordering the imm-bearing (last-sequence)
    segment is not necessarily the last to *arrive*.
    """

    __slots__ = ("arrived", "segments", "byte_len", "first_ts", "imm")

    def __init__(self, segments: int) -> None:
        self.arrived = 0
        self.segments = segments
        self.byte_len = 0
        self.first_ts = 0.0
        self.imm = None


class Nic:
    """A host NIC attached to the fabric through one egress channel."""

    def __init__(
        self,
        sim: "Simulator",
        host: int,
        fabric: "Fabric",
        mtu: int = 4096,
        header_bytes: int = 64,
        memory: Optional[Memory] = None,
        rail: int = 0,
    ) -> None:
        self.sim = sim
        self.host = host
        self.fabric = fabric
        self.mtu = mtu
        self.header_bytes = header_bytes
        #: which network plane this NIC serves (multi-rail fabrics wire
        #: one NIC per rail; all of a host's NICs share its Memory so an
        #: MR registered once is reachable from any plane)
        self.rail = rail
        self.memory = memory if memory is not None else Memory(host)
        self.egress: Optional[Channel] = None  # wired by the Fabric
        self.qps: Dict[int, QueuePair] = {}
        self._qpn_counter = itertools.count(1)
        self._msg_counter = itertools.count(1)
        self._mcast_attached: Dict[int, List[int]] = collections.defaultdict(list)
        # (src_host, src_qpn, msg_id) -> reassembly state
        self._reassembly: Dict[Tuple[int, int, int], _Reassembly] = {}
        # RC sends that arrived before a recv WR was posted: per local qpn
        self._rc_pending: Dict[int, Deque[Packet]] = collections.defaultdict(collections.deque)
        # RC write-with-imm notifications parked for the same reason
        self._parked_imm: Dict[int, List[tuple]] = {}
        # fully-arrived RC sends awaiting a receive WR
        self._rc_complete_sends: Dict[int, List[tuple]] = {}
        self.rnr_drops = 0
        self.packets_received = 0
        self.bytes_received = 0
        #: fail-stop flag: a dead NIC neither transmits nor receives, wire
        #: or loopback (set by Fabric.crash_host, never cleared)
        self.dead = False
        #: observability track (repro.obs.trace.Track) or None; records
        #: timestamps only, never schedules events.
        self.trace = None

    # ----------------------------------------------------------------- verbs

    def create_cq(self, name: str = "") -> CompletionQueue:
        return CompletionQueue(self.sim, name or f"h{self.host}-cq")

    def create_qp(
        self,
        transport: Transport,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
        max_recv_wr: int = 8192,
    ) -> QueuePair:
        qpn = next(self._qpn_counter)
        # NB: explicit None checks — an empty CompletionQueue is falsy.
        qp = QueuePair(
            self,
            qpn,
            transport,
            send_cq if send_cq is not None else self.create_cq(),
            recv_cq if recv_cq is not None else self.create_cq(),
            max_recv_wr=max_recv_wr,
        )
        self.qps[qpn] = qp
        return qp

    def attach_mcast(self, gid: int, qpn: int) -> None:
        self.fabric.register_mcast_member(gid, self.host)
        if qpn not in self._mcast_attached[gid]:
            self._mcast_attached[gid].append(qpn)

    def adopt_qp(self, qp: QueuePair) -> None:
        """Re-home *qp* (and its multicast attachments) onto this NIC —
        the multi-rail plane-failover path.  A host's rail NICs share its
        Memory, so only the addressing moves: the QP keeps its receive
        queue, CQs and posted WRs, gets a fresh QPN in this NIC's space,
        and future sends leave through this NIC's plane."""
        old = qp.nic
        if old is self:
            return
        gids = sorted(qp.mcast_groups)
        for gid in gids:
            old.detach_mcast(gid, qp.qpn)
        old.qps.pop(qp.qpn, None)
        qp.qpn = next(self._qpn_counter)
        qp.nic = self
        self.qps[qp.qpn] = qp
        for gid in gids:
            self.attach_mcast(gid, qp.qpn)

    def detach_mcast(self, gid: int, qpn: int) -> None:
        if qpn in self._mcast_attached.get(gid, ()):
            self._mcast_attached[gid].remove(qpn)

    # ------------------------------------------------------------- send path

    def _build_send_packets(self, qp: QueuePair, wr: SendWR):
        """Materialize the wire packets of a non-read send WR.

        Returns ``(wr, packets, dst)`` — ``wr`` is replaced by a copy for
        inline sends (payload snapshotted at post time, IB semantics).
        """
        if wr.inline_data is not None:
            import numpy as _np

            data = _np.asarray(wr.inline_data)
            if data.dtype != _np.uint8:
                data = data.view(_np.uint8)
            data = data.copy()
            wr = SendWR(**{**wr.__dict__, "inline_data": None, "length": int(data.nbytes)})
        else:
            mr = self.memory.lookup(wr.mr_key) if wr.length > 0 else None
            data = mr.view(wr.offset, wr.length) if mr is not None else None
        if wr.mcast_gid is not None:
            dst = MCAST_FLAG + wr.mcast_gid
        else:
            dst = wr.dst if qp.transport is Transport.UD else qp.peer[0]
        dst_qpn = wr.dst_qpn if qp.transport is Transport.UD else (
            qp.peer[1] if qp.peer else None
        )
        if wr.verb == "send":
            kind = {
                Transport.UD: PacketKind.UD_SEND,
                Transport.RC: PacketKind.RC_SEND,
                Transport.UC: PacketKind.RC_SEND,  # UC two-sided behaves alike
            }[qp.transport]
        else:  # write
            kind = PacketKind.UC_WRITE if qp.transport is Transport.UC else PacketKind.RC_WRITE

        # Segment into MTU-sized packets.
        length = wr.length
        n_seg = max(1, -(-length // self.mtu))
        msg_id = next(self._msg_counter)
        packets = []
        for seg in range(n_seg):
            lo = seg * self.mtu
            hi = min(length, lo + self.mtu)
            payload = data[lo:hi] if data is not None and hi > lo else None
            pkt = Packet(
                src=self.host,
                dst=dst,
                kind=kind,
                payload=payload,
                payload_len=hi - lo,
                header_bytes=self.header_bytes,
                imm=wr.imm if seg == n_seg - 1 else None,
                qpn=dst_qpn,
                src_qpn=qp.qpn,
                msg_id=msg_id,
                msg_seq=seg,
                msg_segments=n_seg,
            )
            if wr.verb == "write":
                pkt.ctx = {
                    "remote_key": wr.remote_key,
                    "remote_offset": wr.remote_offset + lo,
                }
            packets.append(pkt)
        return wr, packets, dst

    def _complete_send(self, qp: QueuePair, wr: SendWR, dst: int, last_finish: float) -> None:
        """Schedule the sender-side CQE of a signaled WR."""
        if not wr.signaled:
            return
        opcode = Opcode.SEND if wr.verb == "send" else Opcode.RDMA_WRITE
        cqe = CQE(wr_id=wr.wr_id, opcode=opcode, qpn=qp.qpn, byte_len=wr.length, imm=wr.imm)
        if qp.transport is Transport.RC:
            # Reliable delivery: completion once the last segment is acked.
            delay = (last_finish - self.sim.now) + self.fabric.one_way_delay(self.host, dst) * 2
            self.sim.post_later(delay, qp.send_cq.push, cqe)
        else:
            # Unreliable: local completion when the last byte hits the wire.
            self.sim.post_at(last_finish, qp.send_cq.push, cqe)

    def _execute_send(self, qp: QueuePair, wr: SendWR) -> None:
        if wr.verb == "read":
            self._execute_read(qp, wr)
            return
        wr, packets, dst = self._build_send_packets(qp, wr)
        last_finish = self._transmit_burst(packets)[-1]
        self._complete_send(qp, wr, dst, last_finish)

    def post_send_batch(self, items) -> None:
        """Post a sequence of ``(qp, wr)`` send WRs at the current instant.

        The semantic equivalent of calling ``qp.post_send(wr)`` for each
        item in order, but back-to-back wire runs toward one destination
        are handed to the egress channel as a single packet train, which a
        fault-free channel moves with one event instead of one per packet.
        The doorbell-batched multicast send worker (§V-A) posts through
        this path.
        """
        trc = self.trace
        if trc is not None:
            items = list(items)
            trc.instant("nic.doorbell", self.sim.now, {"wrs": len(items)})
        run_pkts: List[Packet] = []
        run_meta: List[tuple] = []  # (qp, wr, dst, n_packets)
        run_dst: Optional[int] = None

        def flush() -> None:
            nonlocal run_pkts, run_meta, run_dst
            if not run_pkts:
                return
            finishes = self._transmit_burst(run_pkts)
            i = 0
            for fqp, fwr, fdst, n in run_meta:
                i += n
                self._complete_send(fqp, fwr, fdst, finishes[i - 1])
            run_pkts = []
            run_meta = []
            run_dst = None

        for qp, wr in items:
            qp._validate_send(wr)
            if wr.verb == "read":
                flush()
                self._execute_read(qp, wr)
                continue
            wr, packets, dst = self._build_send_packets(qp, wr)
            if dst != run_dst:
                flush()
            if dst == self.host:
                # Loopback never trains; keep the per-packet turnaround.
                last_finish = self._transmit_burst(packets)[-1]
                self._complete_send(qp, wr, dst, last_finish)
                continue
            run_dst = dst
            run_pkts.extend(packets)
            run_meta.append((qp, wr, dst, len(packets)))
        flush()

    def _execute_read(self, qp: QueuePair, wr: SendWR) -> None:
        """RDMA READ: header-only request; target NIC streams the response."""
        target_host, target_qpn = qp.peer  # validated earlier
        pkt = Packet(
            src=self.host,
            dst=target_host,
            kind=PacketKind.RC_READ_REQ,
            payload=None,
            payload_len=0,
            header_bytes=self.header_bytes,
            qpn=target_qpn,
            src_qpn=qp.qpn,
            ctx={
                "remote_key": wr.remote_key,
                "remote_offset": wr.remote_offset,
                "length": wr.length,
                "sink_key": wr.mr_key,
                "sink_offset": wr.offset,
                "wr_id": wr.wr_id,
                "signaled": wr.signaled,
            },
        )
        self._transmit(pkt)

    def _transmit(self, pkt: Packet) -> float:
        if self.dead:
            return self.sim.now  # dead NIC: packet vanishes, no wire time
        if pkt.dst == self.host:
            # Loopback: no wire, small constant DMA turnaround.
            finish = self.sim.now + self.fabric.loopback_delay
            self.sim.post_at(finish, self.receive, pkt, None)
            return finish
        if self.egress is None:
            raise RuntimeError(f"NIC h{self.host} is not wired to the fabric")
        return self.egress.transmit(pkt)

    def _transmit_burst(self, pkts: List[Packet]) -> List[float]:
        """Transmit a same-destination packet run built at this instant;
        returns per-packet serialization-finish times.  Multi-packet wire
        runs go out as a train (coalesced when the channel allows it)."""
        if self.dead:
            now = self.sim.now
            return [now for _ in pkts]
        if pkts[0].dst == self.host:
            return [self._transmit(p) for p in pkts]
        if self.egress is None:
            raise RuntimeError(f"NIC h{self.host} is not wired to the fabric")
        if len(pkts) == 1:
            return [self.egress.transmit(pkts[0])]
        return self.egress.transmit_train(pkts)

    # ---------------------------------------------------------- receive path

    def receive_train(self, train: PacketTrain, channel: Optional[Channel]) -> None:
        """Replay a coalesced train's packets at their exact per-packet
        arrival instants: deliver every packet due now, then chain ONE
        event for the next pending arrival.  State-dependent receive
        decisions (RNR drops, CQE timestamps, staging occupancy) therefore
        see the same world as per-packet simulation.

        When the whole remaining train targets one batch-delivery QP and
        no state-dependent decision can differ (:meth:`_train_batch_qp`),
        the train is consumed HERE, in this one event: payloads land and
        CQEs are pushed immediately, each stamped with its exact per-packet
        arrival instant for the consumer to anchor on."""
        if self.dead:
            return
        pkts = train.packets
        arr = train.arrivals
        n = len(pkts)
        i = train.next_idx
        now = self.sim.now
        qp = self._train_batch_qp(pkts, i)
        if qp is not None:
            self._deliver_train_batch(qp, pkts, arr, i)
            return
        receive = self.receive
        while i < n and arr[i] <= now:
            receive(pkts[i], channel)
            i += 1
        if i < n:
            train.next_idx = i
            self.sim.post_at(arr[i], self.receive_train, train, channel)

    def _train_batch_qp(self, pkts: List[Packet], i: int) -> Optional[QueuePair]:
        """Eligibility gate for batched train delivery.

        Returns the single target QP when delivering ``pkts[i:]`` in one
        event is bit-equivalent to per-packet replay, else ``None``:

        * every packet is a multicast UD send (or single-segment multicast
          UC write carrying an immediate) to the *same* group;
        * exactly one local QP is attached to that group, and it opted in
          via :attr:`QueuePair.batch_delivery`;
        * enough receive WRs are posted for the whole train, and (UD) every
          payload fits its WR — so no RNR/length drop can occur mid-train.
          Inbound packets to one host serialize on its ingress link, so no
          other arrival can observe the early queue pops mid-window.
        """
        first = pkts[i]
        kind = first.kind
        if kind is PacketKind.UD_SEND:
            uc = False
        elif kind is PacketKind.UC_WRITE:
            uc = True
        else:
            return None
        if not first.is_multicast:
            return None
        gid = first.mcast_gid
        n = len(pkts)
        for k in range(i, n):
            p = pkts[k]
            if p.kind is not kind or not p.is_multicast or p.mcast_gid != gid:
                return None
            if uc and (p.msg_segments != 1 or p.imm is None):
                return None
        qpns = self._mcast_attached.get(gid)
        if qpns is None or len(qpns) != 1:
            return None
        qp = self.qps.get(next(iter(qpns)))
        if qp is None or not qp.batch_delivery:
            return None
        if len(qp.recv_queue) < n - i:
            return None
        if uc:
            lookup = self.memory.lookup
            for k in range(i, n):
                p = pkts[k]
                try:
                    lookup(p.ctx["remote_key"]).check(
                        p.ctx["remote_offset"], p.payload_len)
                except (KeyError, IndexError):
                    return None  # UC would silently drop: replay per-packet
        else:
            for wr, k in zip(qp.recv_queue, range(i, n)):
                if pkts[k].payload_len > wr.length:
                    return None
        return qp

    def _deliver_train_batch(self, qp: QueuePair, pkts: List[Packet],
                             arr, i: int) -> None:
        """Consume ``pkts[i:]`` for *qp* now; CQEs carry arrival stamps."""
        trc = self.trace
        pop = qp.recv_queue.popleft
        push_at = qp.recv_cq.push_at
        lookup = self.memory.lookup
        qpn = qp.qpn
        uc = pkts[i].kind is PacketKind.UC_WRITE
        opcode = Opcode.RECV_RDMA_WITH_IMM if uc else Opcode.RECV
        mr_key = -1  # one-entry MR cache: a train lands in one region
        mr = None
        n_pkts = len(pkts) - i
        self.packets_received += n_pkts
        for k in range(i, len(pkts)):
            pkt = pkts[k]
            t = arr[k]
            n = pkt.payload_len
            self.bytes_received += n
            wr = pop()
            if uc:
                ctx = pkt.ctx
                key = ctx["remote_key"]
                if key != mr_key:
                    mr = lookup(key)
                    mr_key = key
                if pkt.payload is not None and n:
                    mr.view(ctx["remote_offset"], n)[:] = pkt.payload[:n]
            elif pkt.payload is not None and n > 0:
                if wr.mr_key != mr_key:
                    mr = lookup(wr.mr_key)
                    mr_key = wr.mr_key
                mr.view(wr.offset, n)[:] = pkt.payload[:n]
            if trc is not None:
                trc.instant("nic.cqe", t)
            push_at(CQE(wr.wr_id, opcode, qpn, n, pkt.imm, pkt.src, pkt.src_qpn), t)

    def receive(self, packet: Packet, channel: Optional[Channel]) -> None:
        """Called by the delivering channel (or loopback)."""
        if self.dead:
            return
        self.packets_received += 1
        self.bytes_received += packet.payload_len
        if packet.kind is PacketKind.INC_REDUCE:
            # Host acting as the reduction root of a switchless INC tree.
            tree = self.fabric._inc_trees.get(packet.mcast_gid)
            if tree is not None:
                from repro.net.topology import host_name

                tree._accumulate(host_name(self.host), packet)
            return
        if packet.is_multicast:
            for qpn in list(self._mcast_attached.get(packet.mcast_gid, ())):
                qp = self.qps.get(qpn)
                if qp is not None:
                    self._deliver(qp, packet)
            return
        if packet.qpn is None or packet.qpn not in self.qps:
            return  # stale/unroutable packet: silently dropped, like HW
        self._deliver(self.qps[packet.qpn], packet)

    def _deliver(self, qp: QueuePair, packet: Packet) -> None:
        kind = packet.kind
        if kind is PacketKind.UD_SEND:
            self._deliver_ud(qp, packet)
        elif kind is PacketKind.UC_WRITE:
            self._deliver_write(qp, packet, reliable=False)
        elif kind is PacketKind.RC_WRITE:
            self._deliver_write(qp, packet, reliable=True)
        elif kind is PacketKind.RC_SEND:
            self._deliver_rc_send(qp, packet)
        elif kind is PacketKind.RC_READ_REQ:
            self._serve_read(qp, packet)
        elif kind is PacketKind.RC_READ_RESP:
            self._absorb_read_response(qp, packet)

    def _deliver_ud(self, qp: QueuePair, packet: Packet) -> None:
        trc = self.trace
        if not qp.recv_queue:
            qp.rnr_drops += 1
            self.rnr_drops += 1
            if trc is not None:
                trc.instant("nic.rnr", self.sim.now)
            return
        wr = qp.recv_queue.popleft()
        n = packet.payload_len
        if n > wr.length:
            qp.rnr_drops += 1  # buffer too small: local length error ≈ drop
            self.rnr_drops += 1
            if trc is not None:
                trc.instant("nic.rnr", self.sim.now)
            return
        if packet.payload is not None and n > 0:
            self.memory.lookup(wr.mr_key).view(wr.offset, n)[:] = packet.payload[:n]
        if trc is not None:
            trc.instant("nic.cqe", self.sim.now)
        qp.recv_cq.push(
            CQE(
                wr_id=wr.wr_id,
                opcode=Opcode.RECV,
                qpn=qp.qpn,
                byte_len=n,
                imm=packet.imm,
                src=packet.src,
                src_qpn=packet.src_qpn,
            )
        )

    def _deliver_write(self, qp: QueuePair, packet: Packet, reliable: bool) -> None:
        # Place the segment directly at its remote address.
        ctx = packet.ctx
        try:
            dst = self.memory.lookup(ctx["remote_key"]).view(
                ctx["remote_offset"], packet.payload_len
            )
        except (KeyError, IndexError):
            if reliable:
                raise  # RC would fatally NAK; surface the protocol bug
            return  # UC silently drops bad placements
        if packet.payload is not None and packet.payload_len:
            dst[:] = packet.payload[: packet.payload_len]
        key = (packet.src, packet.src_qpn or 0, packet.msg_id or 0)
        state = self._reassembly.get(key)
        if state is None:
            state = self._reassembly[key] = _Reassembly(packet.msg_segments)
            state.first_ts = self.sim.now
        state.arrived += 1
        state.byte_len += packet.payload_len
        if packet.imm is not None:
            state.imm = packet.imm
        if state.arrived < state.segments:
            return
        del self._reassembly[key]
        # Whole message placed; write-with-immediate consumes a recv WR.
        if state.imm is None:
            return
        if not qp.recv_queue:
            if reliable:
                # RC hardware RNR-retries until a receive shows up; the
                # data is already placed, only the notification is parked.
                self._parked_imm.setdefault(qp.qpn, []).append(
                    (packet, state.byte_len, state.imm)
                )
            else:
                qp.rnr_drops += 1
                self.rnr_drops += 1
                if self.trace is not None:
                    self.trace.instant("nic.rnr", self.sim.now)
            return
        wr = qp.recv_queue.popleft()
        if self.trace is not None:
            self.trace.instant("nic.cqe", self.sim.now)
        qp.recv_cq.push(
            CQE(
                wr_id=wr.wr_id,
                opcode=Opcode.RECV_RDMA_WITH_IMM,
                qpn=qp.qpn,
                byte_len=state.byte_len,
                imm=state.imm,
                src=packet.src,
                src_qpn=packet.src_qpn,
            )
        )

    def _deliver_rc_send(self, qp: QueuePair, packet: Packet) -> None:
        key = (packet.src, packet.src_qpn or 0, packet.msg_id or 0)
        state = self._reassembly.get(key)
        if state is None:
            state = self._reassembly[key] = _Reassembly(packet.msg_segments)
        state.arrived += 1
        state.byte_len += packet.payload_len
        if packet.imm is not None:
            state.imm = packet.imm
        # Keep the segment's payload until a receive WR lands it.
        self._rc_pending[qp.qpn].append(packet)
        if state.arrived < state.segments:
            return
        del self._reassembly[key]
        if not qp.recv_queue:
            # RC never drops: hardware RNR-retries until a WR shows up.
            self._rc_complete_sends.setdefault(qp.qpn, []).append(
                (key, state.byte_len, state.imm, packet.src, packet.src_qpn)
            )
            return
        self._consume_rc_send(qp, key, state.byte_len, state.imm,
                              packet.src, packet.src_qpn)

    def _consume_rc_send(self, qp: QueuePair, key, byte_len: int,
                         imm: Optional[int], src, src_qpn) -> None:
        wr = qp.recv_queue.popleft()
        # Gather every parked segment of this message (any arrival order;
        # placement is by segment sequence number).
        segments = [p for p in self._rc_pending[qp.qpn]
                    if (p.src, p.src_qpn or 0, p.msg_id or 0) == key]
        self._rc_pending[qp.qpn] = collections.deque(
            p for p in self._rc_pending[qp.qpn]
            if (p.src, p.src_qpn or 0, p.msg_id or 0) != key
        )
        dst_mr = self.memory.lookup(wr.mr_key)
        if byte_len > wr.length:
            raise RuntimeError(
                f"RC send of {byte_len} B larger than posted recv of {wr.length} B"
            )
        for p in segments:
            if p.payload is not None and p.payload_len:
                off = wr.offset + p.msg_seq * self.mtu
                dst_mr.view(off, p.payload_len)[:] = p.payload[: p.payload_len]
        if self.trace is not None:
            self.trace.instant("nic.cqe", self.sim.now)
        qp.recv_cq.push(
            CQE(
                wr_id=wr.wr_id,
                opcode=Opcode.RECV,
                qpn=qp.qpn,
                byte_len=byte_len,
                imm=imm,
                src=src,
                src_qpn=src_qpn,
            )
        )

    def _drain_rc_pending(self, qp: QueuePair) -> None:
        """Called when a recv WR is posted: complete parked RC messages."""
        parked = self._parked_imm.get(qp.qpn)
        if parked and qp.recv_queue:
            packet, byte_len, imm = parked.pop(0)
            wr = qp.recv_queue.popleft()
            qp.recv_cq.push(
                CQE(
                    wr_id=wr.wr_id,
                    opcode=Opcode.RECV_RDMA_WITH_IMM,
                    qpn=qp.qpn,
                    byte_len=byte_len,
                    imm=imm,
                    src=packet.src,
                    src_qpn=packet.src_qpn,
                )
            )
            return
        complete = self._rc_complete_sends.get(qp.qpn)
        if complete and qp.recv_queue:
            key, byte_len, imm, src, src_qpn = complete.pop(0)
            self._consume_rc_send(qp, key, byte_len, imm, src, src_qpn)

    # ----------------------------------------------------------- RDMA READ

    def _serve_read(self, qp: QueuePair, packet: Packet) -> None:
        """Target side: stream the requested bytes back (hardware-only)."""
        ctx = packet.ctx
        src_mr = self.memory.lookup(ctx["remote_key"])
        length = ctx["length"]
        data = src_mr.view(ctx["remote_offset"], length)
        n_seg = max(1, -(-length // self.mtu))
        msg_id = next(self._msg_counter)
        resps = []
        for seg in range(n_seg):
            lo = seg * self.mtu
            hi = min(length, lo + self.mtu)
            resp = Packet(
                src=self.host,
                dst=packet.src,
                kind=PacketKind.RC_READ_RESP,
                payload=data[lo:hi],
                payload_len=hi - lo,
                header_bytes=self.header_bytes,
                qpn=packet.src_qpn,
                src_qpn=qp.qpn,
                msg_id=msg_id,
                msg_seq=seg,
                msg_segments=n_seg,
                ctx={
                    "sink_key": ctx["sink_key"],
                    "sink_offset": ctx["sink_offset"] + lo,
                    "wr_id": ctx["wr_id"],
                    "signaled": ctx["signaled"],
                },
            )
            resps.append(resp)
        self._transmit_burst(resps)

    def _absorb_read_response(self, qp: QueuePair, packet: Packet) -> None:
        ctx = packet.ctx
        if packet.payload is not None and packet.payload_len:
            self.memory.lookup(ctx["sink_key"]).view(
                ctx["sink_offset"], packet.payload_len
            )[:] = packet.payload[: packet.payload_len]
        key = (packet.src, packet.src_qpn or 0, packet.msg_id or 0)
        state = self._reassembly.get(key)
        if state is None:
            state = self._reassembly[key] = _Reassembly(packet.msg_segments)
        state.arrived += 1
        state.byte_len += packet.payload_len
        if state.arrived < state.segments:
            return
        del self._reassembly[key]
        if ctx["signaled"]:
            qp.send_cq.push(
                CQE(
                    wr_id=ctx["wr_id"],
                    opcode=Opcode.RDMA_READ,
                    qpn=qp.qpn,
                    byte_len=state.byte_len,
                    src=packet.src,
                )
            )
