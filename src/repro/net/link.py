"""Point-to-point channels: bandwidth, latency, faults, reordering, counters.

A full-duplex cable is modeled as two independent :class:`Channel` objects.
Serialization is modeled with a ``busy_until`` watermark: a packet starts
transmitting when the channel frees up, occupies it for
``wire_bytes / bandwidth`` seconds, then propagates for ``latency`` seconds
(plus optional adaptive-routing jitter) before being handed to the
destination node's ``receive``.

Fault injection (:class:`FaultSpec`) models fabric drops: corrupted packets
still consume wire time (they were transmitted!) but are never delivered.
Reliable-transport packets are immune by default — real RC hardware
retransmits below the software's event horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Set

import numpy as np

from repro.net.faults import GilbertElliott, Window, normalize_windows
from repro.net.packet import Packet, PacketKind, PacketTrain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["FaultSpec", "Channel", "GilbertElliott", "Window", "UNRELIABLE_KINDS"]

#: Packet kinds subject to fault injection / reordering (unreliable
#: transports).  RC traffic is retransmitted by hardware, so software never
#: observes its losses.
UNRELIABLE_KINDS: Set[PacketKind] = {PacketKind.UD_SEND, PacketKind.UC_WRITE}


@dataclass
class FaultSpec:
    """Fault-injection policy for one channel.

    Attributes
    ----------
    drop_prob:
        Per-packet Bernoulli drop probability (fabric BER model).
    drop_packet_seqs:
        Deterministic drops: the n-th *droppable* packet through this
        channel (0-based) is dropped if its index is in this set.  Used by
        unit tests to force specific loss patterns.
    drop_predicate:
        ``fn(packet, channel_seq) -> bool`` for arbitrary test scenarios.
    reorder_jitter:
        Maximum extra propagation delay, drawn uniformly per packet, that
        models adaptive-routing path dispersion.  Nonzero values cause
        out-of-order delivery of unreliable datagrams.
    protect_reliable:
        When True (default), RC packets are never dropped or reordered.
    gilbert_elliott:
        Optional two-state Markov burst-loss model; evaluated per droppable
        packet (chain state lives on the channel, so two channels sharing a
        spec burst independently).
    flap_windows:
        Link-flap outages: every affected packet transmitted inside one of
        these ``(start, end)`` windows is lost.
    bandwidth_windows:
        Degraded-bandwidth periods ``(start, end, factor)``: the channel
        serializes at ``factor × bandwidth`` inside the window.  Applies to
        *all* packets — it models the wire, not the transport.
    """

    drop_prob: float = 0.0
    drop_packet_seqs: Set[int] = field(default_factory=set)
    drop_predicate: Optional[Callable[[Packet, int], bool]] = None
    reorder_jitter: float = 0.0
    protect_reliable: bool = True
    gilbert_elliott: Optional[GilbertElliott] = None
    flap_windows: Sequence = ()
    bandwidth_windows: Sequence = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError(
                f"drop_prob must be a probability in [0, 1], got {self.drop_prob}"
            )
        if self.reorder_jitter < 0:
            raise ValueError(
                f"reorder_jitter must be >= 0, got {self.reorder_jitter}"
            )
        if any(s < 0 for s in self.drop_packet_seqs):
            raise ValueError("drop_packet_seqs must be non-negative indices")
        self.flap_windows = normalize_windows(self.flap_windows)
        self.bandwidth_windows = normalize_windows(self.bandwidth_windows)

    def affects(self, packet: Packet) -> bool:
        if self.protect_reliable and packet.kind not in UNRELIABLE_KINDS:
            return False
        return True

    def clone(self) -> "FaultSpec":
        """An independent copy for one channel (fresh mutable state)."""
        return FaultSpec(
            drop_prob=self.drop_prob,
            drop_packet_seqs=set(self.drop_packet_seqs),
            drop_predicate=self.drop_predicate,
            reorder_jitter=self.reorder_jitter,
            protect_reliable=self.protect_reliable,
            gilbert_elliott=self.gilbert_elliott,
            flap_windows=self.flap_windows,
            bandwidth_windows=self.bandwidth_windows,
        )

    def in_flap(self, t: float) -> bool:
        return any(w.contains(t) for w in self.flap_windows)

    def bandwidth_factor(self, t: float) -> float:
        for w in self.bandwidth_windows:
            if w.contains(t):
                return w.factor
        return 1.0


class Channel:
    """A unidirectional link from ``src_name`` to a destination node.

    Parameters
    ----------
    sim:
        The simulator.
    src_name / dst_name:
        Node names, for identification in counters and routing.
    dst_node:
        The object whose ``receive(packet, channel)`` is called on delivery.
    bandwidth:
        Bytes per second.
    latency:
        Propagation delay in seconds.
    fault:
        Optional :class:`FaultSpec`.
    rng:
        numpy Generator for this channel's stochastic decisions; required
        when the fault spec uses probabilities or jitter.
    coalescing:
        Allow :meth:`transmit_train` to move back-to-back packet runs as
        one event when the channel is fault-free (the simulator fast
        path).  Disabling it forces per-packet simulation everywhere —
        used by the equivalence suite; virtual-time results are identical
        either way.
    """

    __slots__ = (
        "sim",
        "src_name",
        "dst_name",
        "dst_node",
        "bandwidth",
        "latency",
        "fault",
        "rng",
        "coalescing",
        "busy_until",
        "ctrl_bypass_bytes",
        "bytes_sent",
        "packets_sent",
        "payload_bytes_sent",
        "bytes_dropped",
        "packets_dropped",
        "down",
        "trains_sent",
        "train_packets",
        "_droppable_seq",
        "_ge_bad",
        "trace",
    )

    def __init__(
        self,
        sim: "Simulator",
        src_name: str,
        dst_name: str,
        dst_node,
        bandwidth: float,
        latency: float,
        fault: Optional[FaultSpec] = None,
        rng: Optional[np.random.Generator] = None,
        coalescing: bool = True,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.src_name = src_name
        self.dst_name = dst_name
        self.dst_node = dst_node
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.fault = fault
        self.rng = rng
        self.coalescing = coalescing
        self.busy_until = 0.0
        #: Packets at or below this wire size ride a high-priority virtual
        #: lane: they do not wait behind (or add to) the bulk-data queue.
        #: Models the fabric QoS (IB Virtual Lanes) the paper assumes for
        #: protocol control traffic (§VII-b); set to 0 to disable.
        self.ctrl_bypass_bytes = 128
        # --- counters (the "switch port telemetry" of Figure 12) ---
        self.bytes_sent = 0  #: wire bytes that finished serialization
        self.payload_bytes_sent = 0
        self.packets_sent = 0
        self.bytes_dropped = 0
        self.packets_dropped = 0
        #: fail-stop flag: a downed port drops everything instantly (set by
        #: Fabric.crash_link / crash_switch, never cleared)
        self.down = False
        self.trains_sent = 0  #: coalesced trains moved as one event
        self.train_packets = 0  #: packets carried inside those trains
        self._droppable_seq = 0  #: index among fault-affected packets
        self._ge_bad: Optional[bool] = None  #: Gilbert–Elliott chain state
        #: observability track (repro.obs.trace.Track) or None; tracing
        #: records timestamps only — it never schedules events or consumes
        #: randomness, so results are identical with it on or off.
        self.trace = None

    @property
    def name(self) -> str:
        return f"{self.src_name}->{self.dst_name}"

    # -------------------------------------------------------------- transmit

    def transmit(self, packet: Packet) -> float:
        """Queue *packet* for transmission; returns its serialization-finish
        time (the instant the last byte leaves this port).

        Delivery to the destination node is scheduled internally; a dropped
        packet still occupies the wire but is never delivered.
        """
        now = self.sim.now
        if self.down:
            self.bytes_dropped += packet.wire_bytes
            self.packets_dropped += 1
            return now
        bandwidth = self.bandwidth
        if self.fault is not None:
            # Degraded-bandwidth periods slow the wire itself, for every
            # transport (evaluated at transmit start — a DES approximation).
            bandwidth *= self.fault.bandwidth_factor(now)
        if packet.wire_bytes <= self.ctrl_bypass_bytes:
            # High-priority VL: negligible wire time, no bulk queuing.
            start = now
            finish = now + packet.wire_bytes / bandwidth
        else:
            start = now if now > self.busy_until else self.busy_until
            finish = start + packet.wire_bytes / bandwidth
            self.busy_until = finish
        self.bytes_sent += packet.wire_bytes
        self.payload_bytes_sent += packet.payload_len
        self.packets_sent += 1
        trc = self.trace
        if trc is not None and packet.wire_bytes > self.ctrl_bypass_bytes:
            trc.complete("link.busy", start, finish - start)

        jitter = 0.0
        if self.fault is not None and self.fault.affects(packet):
            seq = self._droppable_seq
            self._droppable_seq += 1
            if self._should_drop(packet, seq):
                self.bytes_dropped += packet.wire_bytes
                self.packets_dropped += 1
                if trc is not None:
                    trc.instant("link.drop", finish)
                return finish
            if self.fault.reorder_jitter > 0.0:
                if self.rng is None:
                    raise RuntimeError(f"channel {self.name} needs an rng for jitter")
                jitter = float(self.rng.uniform(0.0, self.fault.reorder_jitter))

        deliver_at = finish + self.latency + jitter
        self.sim.post_at(deliver_at, self.dst_node.receive, packet, self)
        return finish

    # ------------------------------------------------------------ fast path

    def _timing_inert(self) -> bool:
        """True when the fault state cannot perturb any packet's *timing*
        from now on: no reordering jitter, and no flap/bandwidth window
        that is active now or scheduled for the future.  This is the
        coalescing eligibility gate: a train's busy-chain walk evaluates
        every packet's serialization at the nominal bandwidth and in FIFO
        order, which is exact iff timing faults are quiescent.  *Drop*
        machinery does not break the walk — drops are evaluated inside it
        (see :meth:`transmit_train`) with the identical RNG consumption
        order, so lossy channels still coalesce between loss decisions."""
        f = self.fault
        if f is None:
            return True
        if f.reorder_jitter > 0.0:
            return False
        now = self.sim.now
        for w in f.flap_windows:
            if w.end > now:
                return False
        for w in f.bandwidth_windows:
            if w.end > now:
                return False
        return True

    def _drop_inert(self) -> bool:
        """True when no drop machinery is armed: every packet transmitted
        from now on is delivered (flap outages are covered by
        :meth:`_timing_inert`, which only passes once all windows have
        elapsed)."""
        f = self.fault
        if f is None:
            return True
        return not (
            f.drop_prob > 0.0
            or f.drop_packet_seqs
            or f.drop_predicate is not None
            or f.gilbert_elliott is not None
        )

    def _train_inert(self) -> bool:
        """Fully inert: neither timing nor loss faults can touch a packet
        from now on (the flow-level fast-forward eligibility predicate)."""
        return self._timing_inert() and self._drop_inert()

    def fault_inert(self) -> bool:
        """Public inertness probe for analytic layers (flow fast-forward):
        the channel is up and provably cannot drop, delay, or reorder any
        future packet."""
        return not self.down and self._train_inert()

    def transmit_train(self, packets: Sequence[Packet], injections: Optional[Sequence[float]] = None):
        """Transmit a back-to-back run of same-flow packets.

        When the channel's *timing* faults are quiescent (see
        :meth:`_timing_inert`) the whole run is serialized with one
        ``busy_until`` walk; byte/packet counters and every per-packet
        serialization/arrival instant are computed with the same float
        arithmetic as :meth:`transmit`, so virtual-time results are
        bit-identical.  Drop machinery (Bernoulli, Gilbert–Elliott,
        deterministic seqs, predicates) does not force the slow path: each
        packet's drop decision is evaluated inside the walk in transmit
        order — the identical RNG consumption order — and the surviving
        packets are delivered as one :class:`PacketTrain` (or per-packet
        when fewer than two survive).  Only timing faults (jitter, live
        flap/bandwidth windows) defer to the per-packet slow path.

        ``injections`` gives per-packet transmit-start instants (a switch
        relaying a train injects each packet as it arrives); ``None`` means
        all packets are injected now (a sender bursting a batch).  Returns
        per-packet serialization-finish times, or ``None`` when packets
        with future injection instants were deferred to the slow path.
        """
        n = len(packets)
        if n == 0:
            return []
        now = self.sim.now
        if self.down:
            for p in packets:
                self.bytes_dropped += p.wire_bytes
            self.packets_dropped += n
            return [now] * n
        eligible = (
            self.coalescing
            and n > 1
            and self._timing_inert()
            and all(p.wire_bytes > self.ctrl_bypass_bytes for p in packets)
        )
        if not eligible:
            if injections is None:
                return [self.transmit(p) for p in packets]
            finishes = []
            all_now = True
            post_at = self.sim.post_at
            for p, inj in zip(packets, injections):
                if inj <= now:
                    finishes.append(self.transmit(p))
                else:
                    # Replay the per-packet injection instants the slow
                    # path would have seen.
                    all_now = False
                    post_at(inj, self.transmit, p)
            return finishes if all_now else None

        bandwidth = self.bandwidth
        latency = self.latency
        prev = self.busy_until
        finishes = []
        survivors = []
        surv_arrivals = []
        bytes_sum = 0
        payload_sum = 0
        fault = self.fault
        trc = self.trace
        first_inj = now if injections is None else injections[0]
        first_start = first_inj if first_inj > prev else prev
        for i, p in enumerate(packets):
            inj = now if injections is None else injections[i]
            start = inj if inj > prev else prev
            prev = start + p.wire_bytes / bandwidth
            finishes.append(prev)
            bytes_sum += p.wire_bytes
            payload_sum += p.payload_len
            if fault is not None and fault.affects(p):
                # Same droppable index and RNG consumption order as the
                # per-packet path.  A dropped packet still burned its wire
                # time above; it just never arrives.
                seq = self._droppable_seq
                self._droppable_seq += 1
                if self._should_drop(p, seq):
                    self.bytes_dropped += p.wire_bytes
                    self.packets_dropped += 1
                    if trc is not None:
                        trc.instant("link.drop", prev)
                    continue
            survivors.append(p)
            surv_arrivals.append(prev + latency)
        self.busy_until = prev
        self.bytes_sent += bytes_sum
        self.payload_bytes_sent += payload_sum
        self.packets_sent += n
        if trc is not None:
            # One merged busy interval for the whole run.
            trc.complete("link.busy", first_start, prev - first_start)
        if len(survivors) >= 2:
            self.trains_sent += 1
            self.train_packets += len(survivors)
            if trc is not None:
                trc.instant("link.train", first_start, {"pkts": len(survivors)})
            train = PacketTrain(survivors, surv_arrivals)
            self.sim.post_at(
                surv_arrivals[0], self.dst_node.receive_train, train, self
            )
        elif survivors:
            # A run gutted down to one survivor is just a packet.
            self.sim.post_at(
                surv_arrivals[0], self.dst_node.receive, survivors[0], self
            )
        return finishes

    def _should_drop(self, packet: Packet, seq: int) -> bool:
        fault = self.fault
        assert fault is not None
        if fault.in_flap(self.sim.now):
            return True  # link down: full outage window
        if seq in fault.drop_packet_seqs:
            return True
        if fault.drop_predicate is not None and fault.drop_predicate(packet, seq):
            return True
        ge = fault.gilbert_elliott
        if ge is not None:
            if self.rng is None:
                raise RuntimeError(f"channel {self.name} needs an rng for burst loss")
            if self._ge_bad is None:
                self._ge_bad = ge.start_bad
            # Step the chain, then sample the state's loss probability.
            if self._ge_bad:
                if self.rng.random() < ge.p_bad_good:
                    self._ge_bad = False
            elif self.rng.random() < ge.p_good_bad:
                self._ge_bad = True
            p = ge.drop_bad if self._ge_bad else ge.drop_good
            if p > 0.0 and self.rng.random() < p:
                return True
        if fault.drop_prob > 0.0:
            if self.rng is None:
                raise RuntimeError(f"channel {self.name} needs an rng for drop_prob")
            return bool(self.rng.random() < fault.drop_prob)
        return False

    # -------------------------------------------------------------- counters

    def reset_counters(self) -> None:
        self.bytes_sent = 0
        self.payload_bytes_sent = 0
        self.packets_sent = 0
        self.bytes_dropped = 0
        self.packets_dropped = 0
        self.trains_sent = 0
        self.train_packets = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} sent={self.packets_sent}p/{self.bytes_sent}B>"
