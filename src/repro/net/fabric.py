"""Fabric: topology + switches + links + NICs, wired and runnable.

The :class:`Fabric` is the deployment unit protocol code runs against::

    sim = Simulator()
    fabric = Fabric(sim, Topology.leaf_spine(16, 2, 2), link_bandwidth=gbit_per_s(56))
    nic = fabric.nic(3)
    qp = nic.create_qp(Transport.UD)
    gid = fabric.create_mcast_group([0, 1, 2, 3])
    qp.attach_mcast(gid)

It also owns the **switch telemetry** (per-port byte counters) that the
paper's Figure 12 experiment scrapes, and the fault-injection knobs used by
the reliability tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Set, Tuple

from repro.net.faults import CrashSpec, StragglerSpec
from repro.net.link import Channel, FaultSpec
from repro.net.nic import Nic
from repro.net.plan import MulticastPlan, plan_mcast
from repro.net.switch import Switch
from repro.net.topology import Topology, host_id, host_name, is_host
from repro.sim.random import RandomStreams
from repro.units import US, gbit_per_s

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["Fabric", "McastGroup"]


@dataclass
class McastGroup:
    """Bookkeeping for one multicast group."""

    gid: int
    members: Set[int]
    tree: Dict[str, Set[str]]
    #: the planner output the tree was programmed from (root, rail, chain
    #: hints); ``tree`` stays the source the switches were programmed with
    plan: Optional[MulticastPlan] = None

    @property
    def rail(self) -> int:
        return self.plan.rail if self.plan is not None else 0


class Fabric:
    """A runnable network instance.

    Parameters
    ----------
    sim:
        The simulator everything schedules on.
    topology:
        Node/edge structure and routing (see :class:`Topology`).
    link_bandwidth:
        Bytes/second for every channel (per direction).
    link_latency:
        Per-hop propagation delay in seconds.
    mtu:
        Maximum datagram payload (IB: up to 4096).
    header_bytes:
        Per-packet wire overhead.
    switch_delay:
        Per-switch forwarding delay.
    streams:
        Named RNG streams for fault injection / jitter.
    default_fault:
        Fault spec cloned onto every channel (fabric-wide BER / jitter).
    coalescing:
        Enable the packet-train fast path on every channel (default on;
        channels with live fault schedules fall back to per-packet
        simulation automatically).  Disable to force per-packet mode
        everywhere — virtual-time results are identical, only wall-clock
        differs (see DESIGN.md §"Simulator fast path").
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        link_bandwidth: float = gbit_per_s(56),
        link_latency: float = 1.0 * US,
        mtu: int = 4096,
        header_bytes: int = 64,
        switch_delay: float = 0.1 * US,
        streams: Optional[RandomStreams] = None,
        default_fault: Optional[FaultSpec] = None,
        coalescing: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.link_bandwidth = float(link_bandwidth)
        self.link_latency = float(link_latency)
        self.mtu = int(mtu)
        self.header_bytes = int(header_bytes)
        self.loopback_delay = 0.5 * US
        self.streams = streams or RandomStreams(seed=0)
        self._default_fault = default_fault
        self.coalescing = bool(coalescing)

        self.nics: Dict[int, Nic] = {}
        self.switches: Dict[str, Switch] = {}
        self.channels: Dict[Tuple[str, str], Channel] = {}
        self._stragglers: Dict[int, StragglerSpec] = {}
        #: bumped on every fault/straggler/crash mutation.  The vectorized
        #: fast-forward hoists its O(P) per-phase eligibility scans to
        #: session start and re-checks only this counter per phase: any
        #: mid-run fault injection invalidates the cached verdicts.
        self.fault_epoch = 0
        # --- fail-stop state (crashes are permanent; sets only grow) ---
        self.dead_hosts: Set[int] = set()
        self.dead_switches: Set[str] = set()
        self.dead_links: Set[Tuple[str, str]] = set()
        #: crash specs armed but not yet executed — the flow fast-forward
        #: layer refuses to fold while any fail-stop is pending, since a
        #: crash landing mid-fold would invalidate the analytic advance
        self.pending_crashes: Set[CrashSpec] = set()
        self._crash_listeners: list = []
        #: callbacks invoked after every SM failure sweep (routes and
        #: multicast trees already repaired) — the communicator hooks its
        #: control-plane/QP rail migration here, mirroring IB's SM-assisted
        #: automatic path migration
        self.sweep_listeners: list = []
        #: delay between a switch/link hard-down and the subnet manager's
        #: automatic re-sweep (reroute + multicast tree rebuild).  Host
        #: crashes do not trigger a sweep: routes through a dead host's
        #: leaf port are harmless, and the collective layer owns host
        #: membership repair.
        self.sm_reroute_delay = 1e-3
        self.mcast_groups: Dict[int, McastGroup] = {}
        self._gid_counter = itertools.count(0)
        self._inc_gid_counter = itertools.count(1 << 16)  # disjoint from mcast gids
        self._hop_cache: Dict[Tuple[int, int], int] = {}
        self._inc_trees: Dict[int, object] = {}

        # --- build nodes ---
        #: host → per-rail NICs (index = rail); ``nics[h]`` stays the
        #: rail-0 NIC so every single-rail caller is untouched.  Rail
        #: NICs of one host share its Memory: an MR registered once is
        #: addressable from any plane, as with real multi-port HCAs.
        self.rail_nics: Dict[int, list] = {}
        for h in range(topology.n_hosts):
            nic0 = Nic(sim, h, self, mtu=mtu, header_bytes=header_bytes)
            per_rail = [nic0]
            for r in range(1, topology.rails):
                per_rail.append(Nic(sim, h, self, mtu=mtu,
                                    header_bytes=header_bytes,
                                    memory=nic0.memory, rail=r))
            self.nics[h] = nic0
            self.rail_nics[h] = per_rail
        for name in topology.switch_names:
            self.switches[name] = Switch(sim, name, forwarding_delay=switch_delay)

        # --- build channels (both directions per edge) ---
        for a, b in topology.edges:
            self._make_channel(a, b)
            self._make_channel(b, a)

        # --- install unicast routing ---
        for sw_name, table in topology.unicast_tables().items():
            sw = self.switches[sw_name]
            for dst, neighbor in table.items():
                sw.install_unicast(dst, neighbor)

    # ------------------------------------------------------------- wiring

    def _node(self, name: str, rail: int = 0):
        if is_host(name):
            return self.rail_nics[host_id(name)][rail]
        return self.switches[name]

    def _make_channel(self, src: str, dst: str) -> None:
        fault = None
        if self._default_fault is not None:
            # Each channel gets its own copy so counters/seq state differ.
            fault = self._default_fault.clone()
        rail = self.topology.rail_of_edge(src, dst)
        ch = Channel(
            self.sim,
            src,
            dst,
            self._node(dst, rail),
            bandwidth=self.link_bandwidth,
            latency=self.link_latency,
            fault=fault,
            rng=self.streams.stream(f"chan:{src}->{dst}"),
            coalescing=self.coalescing,
        )
        self.channels[(src, dst)] = ch
        if is_host(src):
            self.rail_nics[host_id(src)][rail].egress = ch
        else:
            self.switches[src].add_port(ch)

    # -------------------------------------------------------- observability

    def install_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.trace.Tracer` to the whole fabric.

        Gives every channel, NIC and switch its observability track and
        hooks the engine's dispatch histogram.  Call before traffic flows;
        passing ``None`` detaches everything.
        """
        if tracer is None:
            self.sim.trace_hook = None
            for ch in self.channels.values():
                ch.trace = None
            for nics in self.rail_nics.values():
                for nic in nics:
                    nic.trace = None
            for sw in self.switches.values():
                sw.trace = None
            return
        self.sim.trace_hook = tracer.on_engine_event
        for (src, dst), ch in sorted(self.channels.items()):
            ch.trace = tracer.track("link", f"{src}->{dst}")
        for h in sorted(self.rail_nics):
            for r, nic in enumerate(self.rail_nics[h]):
                nic.trace = tracer.track("nic", f"h{h}" if r == 0 else f"h{h}.r{r}")
        for name in sorted(self.switches):
            self.switches[name].trace = tracer.track("switch", name)

    # ------------------------------------------------------------ accessors

    def nic(self, host: int) -> Nic:
        return self.nics[host]

    def rail_nic(self, host: int, rail: int) -> Nic:
        """The NIC host *host* uses on plane *rail* (rail 0 == ``nic()``)."""
        return self.rail_nics[host][rail]

    @property
    def n_hosts(self) -> int:
        return self.topology.n_hosts

    def channel(self, src: str, dst: str) -> Channel:
        return self.channels[(src, dst)]

    def set_fault(self, src: str, dst: str, fault: Optional[FaultSpec]) -> None:
        """Install a fault spec on one directed channel."""
        self.fault_epoch += 1
        self.channels[(src, dst)].fault = fault

    def set_fault_all(self, fault_factory) -> None:
        """Install ``fault_factory(src, dst) -> FaultSpec|None`` everywhere."""
        self.fault_epoch += 1
        for (src, dst), ch in self.channels.items():
            ch.fault = fault_factory(src, dst)

    def set_straggler(self, host: int, spec: Optional[StragglerSpec]) -> None:
        """Install (or clear, with ``None``) a slow-receiver injection on
        *host*: inside the spec's windows, that host's progress engine pays
        extra delay per CQE poll."""
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        self.fault_epoch += 1
        if spec is None:
            self._stragglers.pop(host, None)
        else:
            self._stragglers[host] = spec

    def straggler_delay(self, host: int, now: float) -> float:
        """Extra per-poll delay currently injected on *host* (0 if none)."""
        spec = self._stragglers.get(host)
        return spec.delay_at(now) if spec is not None else 0.0

    def straggler_inert(self, host: int, t0: float, t1: float) -> bool:
        """True when every straggler sample on *host* over ``[t0, t1]``
        would return 0 — the receiver-batch eligibility gate (the host-side
        mirror of :meth:`Channel._train_inert`)."""
        spec = self._stragglers.get(host)
        return spec is None or spec.inert_over(t0, t1)

    # ------------------------------------------------------------ fail-stop

    def on_crash(self, listener) -> None:
        """Register ``listener(spec: CrashSpec)``, called at the instant a
        scheduled crash executes.  Used by the communicator to terminate the
        dead host's *local* processes (software dies with the host) — the
        surviving ranks must learn about the death through the liveness
        protocol, never from this oracle."""
        self._crash_listeners.append(listener)

    def schedule_crash(self, spec: CrashSpec) -> None:
        """Arm a fail-stop fault to strike at ``spec.at`` virtual seconds.

        Validates the target now so a typo'd name fails at the call site.
        Composable with the chaos schedules: drops/flaps/stragglers keep
        running on the surviving elements.
        """
        if spec.host is not None:
            self._resolve_host(spec.host)  # raises on bad name
        elif spec.switch is not None:
            if spec.switch not in self.switches:
                raise ValueError(f"unknown switch {spec.switch!r}")
        else:
            a, b = spec.link  # type: ignore[misc]
            if (a, b) not in self.channels and (b, a) not in self.channels:
                raise ValueError(f"no link between {a!r} and {b!r}")
        self.fault_epoch += 1
        self.pending_crashes.add(spec)
        self.sim.post_at(spec.at, self._execute_crash, spec)

    def _resolve_host(self, host) -> int:
        if isinstance(host, str):
            return host_id(host)
        h = int(host)
        if not 0 <= h < self.n_hosts:
            raise ValueError(f"host {host} out of range")
        return h

    def _execute_crash(self, spec: CrashSpec) -> None:
        self.pending_crashes.discard(spec)
        if spec.host is not None:
            self.crash_host(self._resolve_host(spec.host))
        elif spec.switch is not None:
            self.crash_switch(spec.switch)
            self.sim.post_later(self.sm_reroute_delay, self._sm_sweep)
        else:
            self.crash_link(*spec.link)  # type: ignore[misc]
            self.sim.post_later(self.sm_reroute_delay, self._sm_sweep)
        for listener in self._crash_listeners:
            listener(spec)

    def _sm_sweep(self) -> None:
        """Subnet-manager failure sweep: reprogram unicast routes around the
        dead set and rebuild every multicast tree over surviving members.
        Runs ``sm_reroute_delay`` after a switch or link crash, so a
        mid-collective spine failure heals via the surviving spine and the
        existing cutoff/fetch recovery re-delivers what was black-holed."""
        self.reroute_unicast()
        dead = self.dead_node_names()
        for gid, group in self.mcast_groups.items():
            survivors = [m for m in sorted(group.members) if m not in self.dead_hosts]
            if not survivors:
                continue
            try:
                self.rebuild_mcast_group(gid, survivors, dead)
            except ValueError:
                # Partitioned group (no surviving tree spans the members);
                # leave the stale tree — the collective layer will abort.
                pass
        for listener in self.sweep_listeners:
            listener()

    def crash_host(self, host: int) -> None:
        """Kill host *host* permanently: its NICs (every rail) stop
        transmitting and receiving (wire and loopback) from this instant
        on."""
        self.fault_epoch += 1
        for nic in self.rail_nics[host]:
            nic.dead = True
            if nic.egress is not None:
                nic.egress.down = True
        self.dead_hosts.add(host)

    def crash_switch(self, name: str) -> None:
        """Kill switch *name* permanently: it black-holes every packet and
        all its ports (both directions) go down."""
        self.fault_epoch += 1
        sw = self.switches[name]
        sw.dead = True
        for ch in sw.ports.values():
            ch.down = True
        for (src, dst), ch in self.channels.items():
            if dst == name:
                ch.down = True
        self.dead_switches.add(name)

    def crash_link(self, a: str, b: str) -> None:
        """Take the ``a ↔ b`` link hard-down, both directions."""
        self.fault_epoch += 1
        found = False
        for pair in ((a, b), (b, a)):
            ch = self.channels.get(pair)
            if ch is not None:
                ch.down = True
                found = True
        if not found:
            raise ValueError(f"no link between {a!r} and {b!r}")
        key = (a, b) if a < b else (b, a)
        self.dead_links.add(key)

    def host_isolated(self, host: int) -> bool:
        """True when *host* cannot reach the rest of the fabric: its NIC is
        dead, or every access channel touching it (either direction) is
        hard-down.  The liveness layer consults this before propagating a
        death confirmation — a partitioned minority that cannot deliver a
        packet must not be allowed to declare the healthy majority dead
        through communicator-level bookkeeping."""
        nic = self.nics.get(host)
        if nic is None or nic.dead:
            return True
        name = host_name(host)
        attached = [ch for (src, dst), ch in self.channels.items()
                    if src == name or dst == name]
        return bool(attached) and all(ch.down for ch in attached)

    def dead_node_names(self) -> Set[str]:
        """Names of every dead host and switch (routing exclusion set)."""
        out = {host_name(h) for h in self.dead_hosts}
        out |= self.dead_switches
        return out

    def reroute_unicast(self, exclude: Optional[Set[str]] = None) -> None:
        """Reprogram every surviving switch's unicast table with routes
        that detour around ``exclude`` (default: the current dead set) —
        the subnet-manager sweep after a hard failure."""
        if exclude is None:
            exclude = self.dead_node_names()
        tables = self.topology.unicast_tables(exclude)
        for sw_name, table in tables.items():
            sw = self.switches[sw_name]
            if sw.dead:
                continue
            sw.unicast_table = dict(table)

    def rebuild_mcast_group(self, gid: int, members: Sequence[int],
                            exclude: Optional[Set[str]] = None) -> None:
        """Re-plan group *gid*'s spanning tree around dead elements and
        reprogram the surviving switches (switch-down repair path)."""
        group = self.mcast_groups.get(gid)
        if group is None:
            raise KeyError(f"multicast group {gid} does not exist")
        if exclude is None:
            exclude = self.dead_node_names()
        members_set = set(int(m) for m in members)
        plan = plan_mcast(self.topology, gid, sorted(members_set), exclude)
        for sw in self.switches.values():
            sw.mcast_table.pop(gid, None)
        for node, neighbors in plan.tree.items():
            if not is_host(node):
                self.switches[node].install_mcast(gid, set(neighbors))
        group.members = members_set
        group.tree = plan.tree
        group.plan = plan

    def one_way_delay(self, src: int, dst) -> float:
        """Propagation-only delay estimate host→host (for ack modeling)."""
        if isinstance(dst, int) and dst >= 0 and dst < self.n_hosts and not isinstance(dst, bool):
            key = (src, dst)
            hops = self._hop_cache.get(key)
            if hops is None:
                hops = len(self.topology.path(src, dst)) - 1 if src != dst else 0
                self._hop_cache[key] = hops
            return hops * self.link_latency
        # Multicast destination: use tree depth bound (2 hops in leaf-spine).
        return 2 * self.link_latency

    # ------------------------------------------------------------- multicast

    def create_mcast_group(self, members: Sequence[int]) -> int:
        """Create a group, plan its spanning tree, program the switches.

        Planning dispatches on the topology family (fat-tree plans are
        bit-identical to the legacy spine-rooted BFS); the plan — root,
        rail, chain hints — is kept on the :class:`McastGroup`.
        """
        gid = next(self._gid_counter)
        members_set = set(int(m) for m in members)
        plan = plan_mcast(self.topology, gid, sorted(members_set))
        for node, neighbors in plan.tree.items():
            if not is_host(node):
                self.switches[node].install_mcast(gid, set(neighbors))
        self.mcast_groups[gid] = McastGroup(gid=gid, members=members_set,
                                            tree=plan.tree, plan=plan)
        return gid

    def create_inc_tree(self, members: Sequence[int], rkey: int,
                        qpn_of: Dict[int, int], shard_bytes: int,
                        segment_bytes: int = 4096,
                        root_host: Optional[int] = None):
        """Program a SHARP-like reduction tree (see :mod:`repro.net.inc`).

        ``root_host`` switches the tree from Reduce-Scatter ownership
        (shard per member) to a rooted Reduce (one member owns the whole
        reduced buffer)."""
        from repro.net.inc import IncTree

        return IncTree(self, members, rkey, qpn_of, shard_bytes, segment_bytes,
                       root_host=root_host)

    def _dispatch_inc(self, switch, packet, in_port) -> None:
        tree = self._inc_trees.get(packet.mcast_gid)
        if tree is not None:
            tree.on_switch_packet(switch, packet, in_port)

    def register_mcast_member(self, gid: int, host: int) -> None:
        group = self.mcast_groups.get(gid)
        if group is None:
            raise KeyError(f"multicast group {gid} does not exist")
        if host not in group.members:
            raise ValueError(f"host {host} is not in multicast group {gid}")

    # -------------------------------------------------------------- counters

    def switch_egress_bytes(self, payload_only: bool = False) -> int:
        """Sum of bytes transmitted out of every switch port — the
        'performance counters across all switch ports' of Figure 12."""
        if payload_only:
            return sum(sw.egress_payload_bytes for sw in self.switches.values())
        return sum(sw.egress_wire_bytes for sw in self.switches.values())

    def switch_port_traffic(self, payload_only: bool = False) -> int:
        """PortXmitData + PortRcvData summed over every switch port — the
        Figure 12 telemetry.  Egress counts what a switch transmitted;
        ingress counts what arrived at it (host→switch injection included,
        switch↔switch links counted from both sides, as real per-port
        counters do)."""
        total = 0
        switch_names = set(self.switches)
        for (src, dst), ch in self.channels.items():
            n = ch.payload_bytes_sent if payload_only else ch.bytes_sent
            if src in switch_names:
                total += n  # xmit side
            if dst in switch_names:
                total += n  # rcv side
        return total

    def host_injected_bytes(self, payload_only: bool = False) -> int:
        """Bytes hosts pushed into the fabric (NIC send path)."""
        total = 0
        for (src, _dst), ch in self.channels.items():
            if is_host(src):
                total += ch.payload_bytes_sent if payload_only else ch.bytes_sent
        return total

    def per_switch_egress(self) -> Dict[str, int]:
        return {name: sw.egress_wire_bytes for name, sw in self.switches.items()}

    def set_coalescing(self, enabled: bool) -> None:
        """Toggle the packet-train fast path on every channel (used by the
        equivalence suite to force per-packet mode)."""
        self.coalescing = bool(enabled)
        for ch in self.channels.values():
            ch.coalescing = self.coalescing

    def total_trains(self) -> int:
        """Coalesced trains moved across all channels (fast-path telemetry)."""
        return sum(ch.trains_sent for ch in self.channels.values())

    def total_train_packets(self) -> int:
        """Packets that rode coalesced trains (vs per-packet events)."""
        return sum(ch.train_packets for ch in self.channels.values())

    def total_drops(self) -> int:
        return sum(ch.packets_dropped for ch in self.channels.values())

    def total_rnr_drops(self) -> int:
        return sum(nic.rnr_drops
                   for nics in self.rail_nics.values() for nic in nics)

    def reset_counters(self) -> None:
        for ch in self.channels.values():
            ch.reset_counters()
        for sw in self.switches.values():
            sw.packets_forwarded = 0
            sw.packets_dropped_no_route = 0
        for nics in self.rail_nics.values():
            for nic in nics:
                nic.rnr_drops = 0
                nic.packets_received = 0
                nic.bytes_received = 0
