"""Registered memory regions — the RDMA MR model.

Every buffer the NIC may touch must be *registered*, producing a
:class:`MemoryRegion` with a key.  Remote peers address memory as
``(rkey, offset)``; the owning NIC resolves the key in its host's
:class:`Memory`.  Buffers are numpy ``uint8`` arrays, and all protocol data
movement operates on zero-copy views of them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["Memory", "MemoryRegion"]

_key_counter = itertools.count(1)


class MemoryRegion:
    """A registered buffer.  ``lkey == rkey == key`` (we do not model PD
    separation; protection faults raise immediately instead)."""

    __slots__ = ("key", "buf", "host", "nbytes")

    def __init__(self, key: int, buf: np.ndarray, host: int) -> None:
        self.key = key
        self.buf = buf
        self.host = host
        self.nbytes = int(buf.nbytes)  # cached: hot on every WR validation

    def check(self, offset: int, length: int) -> None:
        """Bounds-check an access without materializing a view — the cheap
        validation used by the WR posting hot path."""
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise IndexError(
                f"MR key={self.key}: access [{offset}, {offset + length}) "
                f"outside region of {self.nbytes} bytes"
            )

    def view(self, offset: int, length: int) -> np.ndarray:
        """Zero-copy slice with bounds checking (the 'IOMMU')."""
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise IndexError(
                f"MR key={self.key}: access [{offset}, {offset + length}) "
                f"outside region of {self.nbytes} bytes"
            )
        return self.buf[offset : offset + length]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MR key={self.key} host={self.host} {self.nbytes}B>"


class Memory:
    """Per-host registry of memory regions."""

    def __init__(self, host: int) -> None:
        self.host = host
        self._regions: Dict[int, MemoryRegion] = {}

    def register(self, buf_or_size: Union[np.ndarray, int], key: Optional[int] = None) -> MemoryRegion:
        """Register an existing buffer or allocate+register ``size`` bytes.

        ``key`` may be forced for *symmetric registration* across hosts
        (used by multicast UC writes, where the sender names one rkey valid
        on every group member).
        """
        if isinstance(buf_or_size, (int, np.integer)):
            buf = np.zeros(int(buf_or_size), dtype=np.uint8)
        else:
            buf = np.asarray(buf_or_size)
            if buf.dtype != np.uint8:
                buf = buf.view(np.uint8)
            if buf.ndim != 1:
                raise ValueError("register a flat uint8 buffer")
        if key is None:
            key = next(_key_counter)
        if key in self._regions:
            raise ValueError(f"key {key} already registered on host {self.host}")
        mr = MemoryRegion(key, buf, self.host)
        self._regions[key] = mr
        return mr

    def deregister(self, key: int) -> None:
        self._regions.pop(key)

    def lookup(self, key: int) -> MemoryRegion:
        mr = self._regions.get(key)
        if mr is None:
            raise KeyError(f"host {self.host}: no MR with key {key} (remote access fault)")
        return mr

    def __len__(self) -> int:
        return len(self._regions)
