"""SHARP-like in-network-compute (INC) reduction substrate.

The paper's Appendix B pairs the multicast Allgather with an in-network
Reduce-Scatter (SHARP [48]): each host injects its contribution *once*;
switches along a spanning tree reduce element-wise; the tree root unicasts
each fully-reduced shard down to its owner.  The send path thus carries N
bytes per NIC and the receive path N/P — the mirror image of multicast
Allgather's bandwidth profile (Insight 2 / Fig 3).

:class:`IncTree` programs that behaviour onto the simulated switches:

* every member host sends INC_REDUCE packets (one per buffer segment,
  tagged with a PSN) toward the tree root,
* each switch accumulates float32 partial sums per (tree, PSN) until all
  of its tree children have contributed, then forwards one packet up,
* the root switch, once a PSN is complete, issues an RDMA-write-with-
  immediate toward the shard's owner host (placed via the symmetric rkey),
* in a switchless (back-to-back) topology the peer host acts as root.

Reduction is element-wise float32 addition, performed on real data so
results are verifiable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import MCAST_FLAG, Packet, PacketKind
from repro.net.topology import host_id, host_name, is_host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric import Fabric

__all__ = ["IncTree"]

class _SwitchRole:
    """Per-switch view of the reduction tree."""

    __slots__ = ("parent", "children", "expected")

    def __init__(self, parent: Optional[str], children: List[str]) -> None:
        self.parent = parent
        self.children = children
        self.expected = len(children)


class IncTree:
    """One reduction tree over a member set.

    Parameters
    ----------
    fabric:
        The fabric to program.
    members:
        Host ids contributing to (and receiving shards of) the reduction.
    rkey:
        Symmetric rkey under which every member registered its shard
        receive buffer.
    qpn_of:
        ``host → qpn`` of the QP whose receive queue consumes the
        down-going write-with-immediate notifications.
    shard_bytes:
        Result bytes per member (the Reduce-Scatter output size), or —
        with ``root_host`` set — the full reduced-buffer size.
    segment_bytes:
        Wire segment size (≤ MTU, multiple of 4 for float32).
    root_host:
        When set, the tree runs a *rooted* Reduce instead of a
        Reduce-Scatter: every PSN's reduced segment is owned by this one
        member, which receives the whole ``shard_bytes`` result while the
        other members receive nothing.
    """

    def __init__(
        self,
        fabric: "Fabric",
        members: Sequence[int],
        rkey: int,
        qpn_of: Dict[int, int],
        shard_bytes: int,
        segment_bytes: int = 4096,
        root_host: Optional[int] = None,
    ) -> None:
        if shard_bytes % 4 or segment_bytes % 4:
            raise ValueError("shard and segment sizes must be float32-aligned")
        if segment_bytes > fabric.mtu:
            raise ValueError("segment_bytes must fit in the MTU")
        self.fabric = fabric
        self.members = sorted(set(int(m) for m in members))
        if len(self.members) < 2:
            raise ValueError("INC reduction needs at least 2 members")
        self.rkey = rkey
        self.qpn_of = dict(qpn_of)
        self.shard_bytes = shard_bytes
        self.segment_bytes = segment_bytes
        self.root_host = None if root_host is None else int(root_host)
        if self.root_host is not None and self.root_host not in self.members:
            raise ValueError(f"root host {self.root_host} is not a tree member")
        # Per-fabric allocation: the gid value picks the tree's spine root
        # (gid % n_cores), so a process-global counter would make event
        # schedules depend on how many trees *other* fabrics created.
        self.gid = next(fabric._inc_gid_counter)
        self.segs_per_shard = -(-shard_bytes // segment_bytes)
        self.n_segments = self.segs_per_shard * (
            1 if self.root_host is not None else len(self.members))
        #: (psn) → (count, accumulator) per switch name
        self._state: Dict[Tuple[str, int], Tuple[int, np.ndarray]] = {}
        self.roles: Dict[str, _SwitchRole] = {}
        self._host_root: Optional[int] = None  # back-to-back fallback
        self._build()

    # ----------------------------------------------------------------- build

    def _build(self) -> None:
        topo = self.fabric.topology
        self.fabric._inc_trees[self.gid] = self
        tree = topo.mcast_tree(self.gid, self.members)
        root = topo.mcast_root(self.gid)
        if root is None:
            # Switchless: designate the lowest member as the reducing host.
            self._host_root = self.members[0]
            return
        # Orient the tree away from the root switch.
        parent: Dict[str, Optional[str]] = {root: None}
        order = [root]
        seen = {root}
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            for nxt in sorted(tree.get(node, ())):
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = node
                    order.append(nxt)
        for node in order:
            if is_host(node):
                continue
            children = [n for n in sorted(tree.get(node, ())) if parent.get(n) == node]
            self.roles[node] = _SwitchRole(parent[node], children)
            sw = self.fabric.switches[node]
            if sw.inc_handler is None:
                sw.inc_handler = self.fabric._dispatch_inc

    # ----------------------------------------------------------- host inject

    def owner_of(self, psn: int) -> Tuple[int, int]:
        """``psn → (owner host, byte offset within the owner's shard)``."""
        if not 0 <= psn < self.n_segments:
            raise IndexError(f"psn {psn} out of range ({self.n_segments})")
        if self.root_host is not None:
            return self.root_host, psn * self.segment_bytes
        shard, seg = divmod(psn, self.segs_per_shard)
        return self.members[shard], seg * self.segment_bytes

    def seg_len(self, psn: int) -> int:
        _, off = self.owner_of(psn)
        return min(self.segment_bytes, self.shard_bytes - off)

    def inject(self, host: int, psn: int, data: np.ndarray) -> float:
        """Send one contribution segment up the tree from *host*; returns
        the serialization finish time on the host's link."""
        pkt = Packet(
            src=host,
            dst=MCAST_FLAG + self.gid,
            kind=PacketKind.INC_REDUCE,
            payload=data,
            header_bytes=self.fabric.header_bytes,
            imm=psn,
        )
        nic = self.fabric.nic(host)
        if self._host_root is not None:
            # Back-to-back: the peer host reduces in software-on-NIC model.
            if host == self._host_root:
                self._accumulate(host_name(host), pkt)
                return self.fabric.sim.now
            return nic.egress.transmit(pkt)
        return nic.egress.transmit(pkt)

    # -------------------------------------------------------- switch compute

    def on_switch_packet(self, switch, packet: Packet, in_port: Optional[str]) -> None:
        self._accumulate(switch.name, packet)

    def _accumulate(self, node: str, packet: Packet) -> None:
        psn = packet.imm
        assert psn is not None
        key = (node, psn)
        payload = packet.payload.view(np.float32).astype(np.float32)
        count, acc = self._state.get(key, (0, None))
        acc = payload.copy() if acc is None else acc + payload
        count += 1
        role = self.roles.get(node)
        if role is not None:
            expected = self._expected_at(node)
        else:
            expected = len(self.members) - 1 + 1  # host root: all members
        if count < expected:
            self._state[key] = (count, acc)
            return
        self._state.pop(key, None)
        self._emit(node, psn, acc)

    def _expected_at(self, node: str) -> int:
        """Contributions a switch waits for: one per tree child subtree."""
        return max(self.roles[node].expected, 1)

    def _emit(self, node: str, psn: int, acc: np.ndarray) -> None:
        role = self.roles.get(node)
        if role is not None and role.parent is not None:
            up = Packet(
                src=-1,
                dst=MCAST_FLAG + self.gid,
                kind=PacketKind.INC_REDUCE,
                payload=acc.view(np.uint8),
                header_bytes=self.fabric.header_bytes,
                imm=psn,
            )
            self.fabric.switches[node].ports[role.parent].transmit(up)
            return
        # Tree root: ship the reduced shard segment to its owner.
        owner, off = self.owner_of(psn)
        down = Packet(
            src=-1,
            dst=owner,
            kind=PacketKind.RC_WRITE,
            payload=acc.view(np.uint8),
            header_bytes=self.fabric.header_bytes,
            imm=psn,
            qpn=self.qpn_of[owner],
            ctx={"remote_key": self.rkey, "remote_offset": off},
        )
        if role is not None:
            sw = self.fabric.switches[node]
            neighbor = sw.unicast_table[owner]
            sw.ports[neighbor].transmit(down)
        else:
            # Host root (back-to-back): deliver locally or over the wire.
            nic = self.fabric.nic(self._host_root)
            if owner == self._host_root:
                self.fabric.sim.call_later(self.fabric.loopback_delay,
                                           nic.receive, down, None)
            else:
                nic.egress.transmit(down)
