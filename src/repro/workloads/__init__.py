"""Experiment workloads.

* :mod:`repro.workloads.fsdp` — the FSDP interleaving scenario (paper
  §II-A, Appendix B): concurrent Allgather + Reduce-Scatter on the same
  nodes, comparing {ring, ring} against {multicast, INC}.
* :mod:`repro.workloads.osu` — OSU-benchmark-style message-size sweeps
  with warm-up/iteration discipline (paper §VI-A methodology).
"""

from repro.workloads.fsdp import (
    FsdpPairResult,
    run_concurrent_pair,
    run_fsdp_backward_pipeline,
)
from repro.workloads.osu import SweepPoint, sweep

__all__ = [
    "FsdpPairResult",
    "SweepPoint",
    "run_concurrent_pair",
    "run_fsdp_backward_pipeline",
    "sweep",
]
