"""OSU-benchmark-style sweeps.

The paper follows scientific-benchmarking practice (§VI-A): warm-up
iterations excluded from measurement, per-iteration times logged across
all ranks, more iterations for small messages.  The simulator is
deterministic, but we keep the same discipline — warm-ups matter because
the first iteration pays lazy resource construction (control QP pairs),
exactly like first-touch effects on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List

__all__ = ["SweepPoint", "sweep"]


@dataclass
class SweepPoint:
    """One (message size → metric) sample of a sweep."""

    msg_bytes: int
    durations: List[float]  #: per measured iteration

    @property
    def mean(self) -> float:
        return sum(self.durations) / len(self.durations)

    @property
    def best(self) -> float:
        return min(self.durations)

    def throughput(self, total_bytes: int) -> float:
        """bytes/s using the mean duration."""
        return total_bytes / self.mean if self.mean > 0 else float("inf")


def sweep(
    run_once: Callable[[int], float],
    sizes: Iterable[int],
    warmup: int = 1,
    iterations: int = 3,
) -> List[SweepPoint]:
    """Run ``run_once(msg_bytes) -> duration`` per size with OSU discipline."""
    points = []
    for size in sizes:
        for _ in range(warmup):
            run_once(size)
        durations = [run_once(size) for _ in range(iterations)]
        points.append(SweepPoint(size, durations))
    return points
