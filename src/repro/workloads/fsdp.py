"""The FSDP interleaving scenario: concurrent Allgather + Reduce-Scatter.

In the FSDP pipeline (paper §II-A) an Allgather fetching the next layer's
parameters runs concurrently with the Reduce-Scatter synchronizing the
previous layer's gradients.  Both compete for NIC injection bandwidth.
Appendix B derives the speedup of the bandwidth-optimal pair
{AG_multicast, RS_INC} over {AG_ring, RS_ring} as ``S = 2 − 2/P``.

:func:`run_concurrent_pair` measures exactly that on the packet-level
simulator: both collectives are started at t=0 on the *same* fabric and
hosts, so they genuinely contend for the simulated links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines import ring_allgather, ring_reduce_scatter
from repro.core.communicator import CollectiveConfig, Communicator
from repro.core.request import CollectiveKind, CollectiveRequest
from repro.core.costmodel import HostCostModel
from repro.net.fabric import Fabric

__all__ = ["FsdpPairResult", "run_concurrent_pair"]


@dataclass
class FsdpPairResult:
    """Makespan of one concurrent {Allgather, Reduce-Scatter} pair."""

    mode: str  # 'ring' | 'optimal'
    comm_size: int
    ag_bytes: int  #: per-rank Allgather contribution
    makespan: float  #: completion time of the slower collective
    ag_duration: float
    rs_duration: float
    correct: bool


def _ag_data(p: int, nbytes: int, seed: int = 0) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, nbytes, dtype=np.uint8) for _ in range(p)]


def _rs_data(p: int, nbytes: int, seed: int = 1) -> List[np.ndarray]:
    elems = (nbytes // 4 // p) * p
    rng = np.random.default_rng(seed)
    return [rng.normal(size=elems).astype(np.float32) for _ in range(p)]


def run_concurrent_pair(
    fabric: Fabric,
    mode: str,
    ag_bytes: int,
    hosts: Optional[Sequence[int]] = None,
    config: Optional[CollectiveConfig] = None,
    cost: Optional[HostCostModel] = None,
    verify: bool = True,
) -> FsdpPairResult:
    """Run {Allgather, Reduce-Scatter} concurrently in the given *mode*.

    ``mode='ring'`` runs ring AG + ring RS; ``mode='optimal'`` runs the
    multicast AG (the paper's protocol) + INC RS.  The RS input size
    matches the AG receive size (Appendix B's symmetric setup): the RS
    contribution is ``ag_bytes · P`` so each RS shard is ``ag_bytes``.
    """
    sim = fabric.sim
    hosts = list(hosts) if hosts is not None else list(range(fabric.n_hosts))
    p = len(hosts)
    ag_data = _ag_data(p, ag_bytes)
    rs_data = _rs_data(p, ag_bytes * p)
    t0 = sim.now

    if mode == "ring":
        ag_pending = ring_allgather(fabric, ag_data, hosts, cost, defer=True)
        rs_pending = ring_reduce_scatter(fabric, rs_data, hosts, cost, defer=True)
        ag_res = ag_pending.finish()
        rs_res = rs_pending.finish()
        ag_end, rs_end = ag_res.t_end, rs_res.t_end
        ok = True
        if verify:
            expected = np.concatenate(ag_data)
            ok = all(np.array_equal(b, expected) for b in ag_res.buffers)
            total = np.sum(rs_data, axis=0)
            shard = total.size // p
            ok = ok and all(
                np.allclose(rs_res.buffers[r], total[r * shard : (r + 1) * shard],
                            rtol=1e-3, atol=1e-3)
                for r in range(p)
            )
        ag_dur, rs_dur = ag_res.duration, rs_res.duration
    elif mode == "optimal":
        # Both collectives run through the unified submission surface: the
        # multicast AG engine and the INC RS substrate started together,
        # drained by a single run() over the pair.  (submit() is asserted
        # bit-identical in virtual time to the old *_async composition by
        # tests/test_submit_api.py.)
        comm = Communicator(fabric, hosts, config)
        ag = comm.submit(CollectiveRequest(
            kind=CollectiveKind.ALLGATHER, data=ag_data))
        rs = comm.submit(CollectiveRequest(
            kind=CollectiveKind.REDUCE_SCATTER, data=rs_data,
            algorithm="inc", cost=cost))
        comm.run(ag, rs)
        rs_res = rs.result()
        ag_res = ag.result()
        comm.release(ag)  # free the op's symmetric rkeys on every NIC
        comm.release(rs)
        ag_end, rs_end = ag_res.t_end, rs_res.t_end
        ok = True
        if verify:
            ok = (ag_res.verify_allgather(ag_data)
                  and rs_res.verify_reduce_scatter(rs_data))
        ag_dur, rs_dur = ag_res.duration, rs_res.duration
    else:
        raise ValueError(f"unknown mode {mode!r} (use 'ring' or 'optimal')")

    return FsdpPairResult(
        mode=mode,
        comm_size=p,
        ag_bytes=ag_bytes,
        makespan=max(ag_end, rs_end) - t0,
        ag_duration=ag_dur,
        rs_duration=rs_dur,
        correct=ok,
    )


def run_fsdp_backward_pipeline(
    fabric: Fabric,
    mode: str,
    layer_shards: Sequence[int],
    hosts: Optional[Sequence[int]] = None,
    config: Optional[CollectiveConfig] = None,
    cost: Optional[HostCostModel] = None,
) -> float:
    """A multi-layer FSDP backward pass: for each layer ``i`` the gradient
    Reduce-Scatter overlaps the parameter Allgather of layer ``i−1``
    (backward prefetch), paper §II-A's pipeline.  Returns the total
    communication time of the step.

    Layers are processed back-to-front; each stage launches the pair for
    its layer concurrently and waits for both before moving on (the
    compute between stages is not modeled — this isolates the
    communication pipeline the paper optimizes).
    """
    total = 0.0
    t0 = fabric.sim.now
    for shard in reversed(list(layer_shards)):
        res = run_concurrent_pair(fabric, mode, shard, hosts=hosts,
                                  config=config, cost=cost, verify=False)
        total = fabric.sim.now - t0
        if not res.correct:  # pragma: no cover - verify=False above
            raise AssertionError("pipeline data corruption")
    return total
